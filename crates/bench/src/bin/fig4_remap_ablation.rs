//! **Figure 4 ablation**: per-gate exchange vs qubit remapping vs
//! remap + fusion on the distributed QFT.
//!
//! The paper's simulator (§4.5) avoids communication for *diagonal*
//! global-target gates; every non-diagonal one still pays a full-slice
//! pairwise exchange — Eq. 6's `log₂(P)` term. The communication-avoiding
//! planner goes further: one batched all-to-all permutation relabels the
//! upcoming non-diagonal global qubits into local slots at `(1 − 2⁻ᵏ)` of
//! a slice — *less* than one exchange — and the whole following run of
//! gates (fused or not) executes with zero communication.
//!
//! Executed section: the same QFT on the virtual cluster under three
//! modes; the accounted quantity is **bytes sent** (exchange counts
//! mislead once partial slices ship). Every run is also gathered and
//! checked against single-node execution to 1e-12. Modelled section:
//! Eq. (6) vs its remap-aware variant at paper scale.
//!
//! Usage: `cargo run -p qcemu-bench --release --bin fig4_remap_ablation
//!         [-- --n-local 10 --max-p 8 --skip-verify]`

use qcemu_bench::{fmt_secs, header, Args};
use qcemu_cluster::{
    run, run_qft_remap, run_qft_simulation, CommPolicy, DistributedState, MachineModel,
};
use qcemu_sim::circuits::qft::qft_circuit;
use qcemu_sim::{FusionPolicy, SimConfig, StateVector};

/// Gathers a distributed QFT run and reports its max deviation from the
/// single-node state vector.
fn verify(n_qubits: usize, p: usize, mode: usize) -> f64 {
    let circuit = qft_circuit(n_qubits);
    let circuit = &circuit;
    let results = run(p, MachineModel::stampede(), move |comm| {
        let mut ds = DistributedState::zero_state(n_qubits, comm);
        match mode {
            0 => ds.apply_circuit(circuit, comm, CommPolicy::Specialized),
            1 => ds.run_circuit(circuit, &FusionPolicy::Disabled, comm),
            _ => ds.run_circuit(circuit, &FusionPolicy::greedy(), comm),
        }
        ds.gather(comm)
    });
    let gathered = results[0].0.as_ref().expect("rank 0 gathers");
    let mut expect = StateVector::zero_state(n_qubits);
    expect.run(circuit, &SimConfig::unfused());
    gathered.max_diff_up_to_phase(&expect)
}

fn main() {
    let args = Args::parse();
    let n_local: usize = args.get("n-local").unwrap_or(10);
    let max_p: usize = args.get("max-p").unwrap_or(8);
    let skip_verify = args.has("skip-verify");
    let machine = MachineModel::stampede();

    header(
        "Figure 4 ablation — per-gate exchange vs remap vs remap+fusion",
        "accounted quantity: bytes sent; remap = batched global<->local permutation",
    );

    println!("[executed] {n_local} local qubits per rank, QFT workload");
    println!(
        "{:>3} {:>3} {:>10} {:>14} {:>12} {:>14} {:>8} {:>10}",
        "n", "P", "mode", "bytes(total)", "bytes/rank", "exch/remaps", "Tcomm", "max|diff|"
    );
    let mut p = 2usize;
    while p <= max_p {
        let per_gate = run_qft_simulation(n_local, p, CommPolicy::Specialized, machine);
        let remap = run_qft_remap(n_local, p, FusionPolicy::Disabled, machine);
        let fused = run_qft_remap(n_local, p, FusionPolicy::greedy(), machine);
        let rows = [
            ("per-gate", &per_gate, 0usize),
            ("remap", &remap, 1),
            ("remap+fuse", &fused, 2),
        ];
        for (name, r, mode) in rows {
            let diff = if skip_verify {
                String::from("-")
            } else {
                format!("{:.2e}", verify(r.n_qubits, p, mode))
            };
            println!(
                "{:>3} {:>3} {:>10} {:>14} {:>12} {:>11}/{:<2} {:>8} {:>10}",
                r.n_qubits,
                p,
                name,
                r.total_bytes,
                r.max_rank_bytes,
                r.max_exchanges,
                r.max_remaps,
                fmt_secs(r.max_sim_comm_s),
                diff,
            );
        }
        assert!(
            fused.total_bytes < per_gate.total_bytes && remap.total_bytes < per_gate.total_bytes,
            "P={p}: remap(+fusion) must send strictly fewer bytes than per-gate exchange"
        );
        p *= 2;
    }
    println!("(verification: gathered distributed state vs single-node run; 1e-12 budget)");

    println!();
    println!("[modelled] paper scale: Eq. 6 vs remap-aware variant");
    println!(
        "{:>3} {:>4} {:>12} {:>12} {:>9}",
        "n", "P", "T_qft(Eq6)", "T_qft(remap)", "speedup"
    );
    for n in 28u32..=36 {
        let p = 1usize << (n - 28);
        let eq6 = machine.t_qft(n, p);
        let rm = machine.t_qft_remap(n, p);
        println!(
            "{:>3} {:>4} {:>12} {:>12} {:>8.2}x",
            n,
            p,
            fmt_secs(eq6),
            fmt_secs(rm),
            eq6 / rm
        );
    }
    println!();
    println!("note: the executed advantage exceeds the modelled one because Eq. 6");
    println!("      ignores the QFT's final SWAP network, which the per-gate path");
    println!("      pays in exchanges and the planner absorbs as free qubit");
    println!("      relabels (zero bytes, zero sweeps).");
}

//! Criterion micro-benchmarks of the structure-specialised kernels —
//! the quantitative backing for the paper's §2/§4.5 claim that exploiting
//! gate structure beats generic sparse-matrix application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcemu_baselines::{LiquidSim, QhipsterSim};
use qcemu_fft::qft_convention;
use qcemu_linalg::{gemm, random_matrix, strassen_with_cutoff};
use qcemu_sim::circuits::qft::qft_circuit;
use qcemu_sim::{Gate, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Single-gate kernels on a 2^20 state: the controlled phase (quarter
/// touch) must be far cheaper than the Hadamard (full butterfly sweep).
fn bench_gate_kernels(c: &mut Criterion) {
    let n = 20usize;
    let mut group = c.benchmark_group("kernels_2^20");
    group.sample_size(20);
    for (name, gate) in [
        ("h_general", Gate::h(10)),
        ("x_permutation", Gate::x(10)),
        ("rz_diagonal", Gate::rz(10, 0.3)),
        ("phase_half_touch", Gate::phase(10, 0.3)),
        ("cphase_quarter_touch", Gate::cphase(3, 10, 0.3)),
        ("cnot", Gate::cnot(3, 10)),
        ("toffoli", Gate::toffoli(3, 7, 10)),
    ] {
        group.bench_function(name, |b| {
            let mut sv = StateVector::uniform_superposition(n);
            b.iter(|| {
                sv.apply(&gate);
                std::hint::black_box(sv.amplitudes()[1]);
            });
        });
    }
    group.finish();
}

/// Emulated QFT (FFT) vs simulated QFT circuit vs baselines at 2^18.
fn bench_qft_paths(c: &mut Criterion) {
    let n = 18usize;
    let circuit = qft_circuit(n);
    let mut group = c.benchmark_group("qft_2^18");
    group.sample_size(10);

    group.bench_function("emulated_fft", |b| {
        let base = StateVector::uniform_superposition(n);
        b.iter(|| {
            let mut amps = base.amplitudes().to_vec();
            qft_convention(&mut amps);
            std::hint::black_box(amps[0]);
        });
    });
    group.bench_function("simulated_ours", |b| {
        b.iter(|| {
            let mut sv = StateVector::uniform_superposition(n);
            sv.apply_circuit(&circuit);
            std::hint::black_box(sv.amplitudes()[0]);
        });
    });
    group.bench_function("simulated_qhipster_like", |b| {
        let sim = QhipsterSim::new();
        b.iter(|| {
            let mut sv = StateVector::uniform_superposition(n);
            sim.run(&circuit, &mut sv);
            std::hint::black_box(sv.amplitudes()[0]);
        });
    });
    group.bench_function("simulated_liquid_like_n14", |b| {
        // LIQUiD-like is slow; use a smaller instance to keep the bench fast.
        let small = qft_circuit(14);
        let sim = LiquidSim::new();
        b.iter(|| {
            let mut sv = StateVector::uniform_superposition(14);
            sim.run(&small, &mut sv);
            std::hint::black_box(sv.amplitudes()[0]);
        });
    });
    group.finish();
}

/// GEMM vs Strassen at the sizes the Table 2 squaring path uses.
fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(5);
    for dim in [128usize, 256, 512] {
        let a = random_matrix(dim, dim, &mut rng);
        let b = random_matrix(dim, dim, &mut rng);
        group.bench_with_input(BenchmarkId::new("gemm", dim), &dim, |bch, _| {
            bch.iter(|| std::hint::black_box(gemm(&a, &b)));
        });
        group.bench_with_input(BenchmarkId::new("strassen_c128", dim), &dim, |bch, _| {
            bch.iter(|| std::hint::black_box(strassen_with_cutoff(&a, &b, 128)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gate_kernels, bench_qft_paths, bench_matmul);
criterion_main!(benches);

//! Criterion micro-benchmarks of the structure-specialised kernels —
//! the quantitative backing for the paper's §2/§4.5 claim that exploiting
//! gate structure beats generic sparse-matrix application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcemu_baselines::{LiquidSim, QhipsterSim};
use qcemu_fft::qft_convention;
use qcemu_linalg::{gemm, random_matrix, simd, strassen_with_cutoff};
use qcemu_sim::circuits::qft::qft_circuit;
use qcemu_sim::{Circuit, FusedCircuit, FusionPolicy, Gate, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Single-gate kernels on a 2^20 state: the controlled phase (quarter
/// touch) must be far cheaper than the Hadamard (full butterfly sweep).
fn bench_gate_kernels(c: &mut Criterion) {
    let n = 20usize;
    let mut group = c.benchmark_group("kernels_2^20");
    group.sample_size(20);
    for (name, gate) in [
        ("h_general", Gate::h(10)),
        ("x_permutation", Gate::x(10)),
        ("rz_diagonal", Gate::rz(10, 0.3)),
        ("phase_half_touch", Gate::phase(10, 0.3)),
        ("cphase_quarter_touch", Gate::cphase(3, 10, 0.3)),
        ("cnot", Gate::cnot(3, 10)),
        ("toffoli", Gate::toffoli(3, 7, 10)),
    ] {
        group.bench_function(name, |b| {
            let mut sv = StateVector::uniform_superposition(n);
            b.iter(|| {
                sv.apply(&gate);
                std::hint::black_box(sv.amplitudes()[1]);
            });
        });
    }
    group.finish();
}

/// Emulated QFT (FFT) vs simulated QFT circuit vs baselines at 2^18.
fn bench_qft_paths(c: &mut Criterion) {
    let n = 18usize;
    let circuit = qft_circuit(n);
    let mut group = c.benchmark_group("qft_2^18");
    group.sample_size(10);

    group.bench_function("emulated_fft", |b| {
        let base = StateVector::uniform_superposition(n);
        b.iter(|| {
            let mut amps = base.amplitudes().to_vec();
            qft_convention(&mut amps);
            std::hint::black_box(amps[0]);
        });
    });
    group.bench_function("simulated_ours", |b| {
        b.iter(|| {
            let mut sv = StateVector::uniform_superposition(n);
            sv.apply_circuit(&circuit);
            std::hint::black_box(sv.amplitudes()[0]);
        });
    });
    group.bench_function("simulated_qhipster_like", |b| {
        let sim = QhipsterSim::new();
        b.iter(|| {
            let mut sv = StateVector::uniform_superposition(n);
            sim.run(&circuit, &mut sv);
            std::hint::black_box(sv.amplitudes()[0]);
        });
    });
    group.bench_function("simulated_liquid_like_n14", |b| {
        // LIQUiD-like is slow; use a smaller instance to keep the bench fast.
        let small = qft_circuit(14);
        let sim = LiquidSim::new();
        b.iter(|| {
            let mut sv = StateVector::uniform_superposition(14);
            sim.run(&small, &mut sv);
            std::hint::black_box(sv.amplitudes()[0]);
        });
    });
    group.finish();
}

/// GEMM vs Strassen at the sizes the Table 2 squaring path uses.
fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(5);
    for dim in [128usize, 256, 512] {
        let a = random_matrix(dim, dim, &mut rng);
        let b = random_matrix(dim, dim, &mut rng);
        group.bench_with_input(BenchmarkId::new("gemm", dim), &dim, |bch, _| {
            bch.iter(|| std::hint::black_box(gemm(&a, &b)));
        });
        group.bench_with_input(BenchmarkId::new("strassen_c128", dim), &dim, |bch, _| {
            bch.iter(|| std::hint::black_box(strassen_with_cutoff(&a, &b, 128)));
        });
    }
    group.finish();
}

/// A dense fused block: enough general gates inside a k-qubit window to
/// trip the Dense classification (one 2^k×2^k mat-vec per group — the
/// FLOP-dense loop where SIMD pays most).
fn dense_block(n: usize, lo: usize, k: usize) -> FusedCircuit {
    let mut c = Circuit::new(n);
    let reps = (1usize << k) / k + 1;
    for _ in 0..reps {
        for q in lo..lo + k {
            c.h(q);
            c.ry(q, 0.37);
        }
    }
    let fused = c.fuse(&FusionPolicy::Greedy {
        max_fused_qubits: k,
    });
    assert_eq!(fused.ops().len(), 1, "workload must fuse to one block");
    fused
}

/// The vectorised kernels, scalar vs SIMD at 2^20: the contiguous-target
/// butterfly, a low-target butterfly (short runs — stays scalar either
/// way, pinning the fallback cost), the diagonal/phase sweep, the fused
/// dense block, and the FFT butterfly. Parameterised over the dispatch
/// via `simd::force_scalar`, so one binary produces both columns.
fn bench_simd_kernels(c: &mut Criterion) {
    let n = 20usize;
    let mut group = c.benchmark_group(format!("simd_2^20 [{}]", simd::backend_name()));
    group.sample_size(10);
    let fused = dense_block(n, 10, 5);
    for (mode, forced) in [("scalar", true), ("simd", false)] {
        simd::force_scalar(forced);
        group.bench_function(BenchmarkId::new("butterfly_contig_h10", mode), |b| {
            let mut sv = StateVector::uniform_superposition(n);
            let gate = Gate::h(10);
            b.iter(|| {
                sv.apply(&gate);
                std::hint::black_box(sv.amplitudes()[1]);
            });
        });
        group.bench_function(BenchmarkId::new("butterfly_low_target_h0", mode), |b| {
            let mut sv = StateVector::uniform_superposition(n);
            let gate = Gate::h(0);
            b.iter(|| {
                sv.apply(&gate);
                std::hint::black_box(sv.amplitudes()[1]);
            });
        });
        group.bench_function(BenchmarkId::new("diagonal_phase10", mode), |b| {
            let mut sv = StateVector::uniform_superposition(n);
            let gate = Gate::phase(10, 0.3);
            b.iter(|| {
                sv.apply(&gate);
                std::hint::black_box(sv.amplitudes()[1]);
            });
        });
        group.bench_function(BenchmarkId::new("fused_dense_k5", mode), |b| {
            let mut sv = StateVector::uniform_superposition(n);
            b.iter(|| {
                sv.apply_fused_circuit(&fused);
                std::hint::black_box(sv.amplitudes()[1]);
            });
        });
        group.bench_function(BenchmarkId::new("fft", mode), |b| {
            let base = StateVector::uniform_superposition(n);
            b.iter(|| {
                let mut amps = base.amplitudes().to_vec();
                qft_convention(&mut amps);
                std::hint::black_box(amps[0]);
            });
        });
    }
    simd::force_scalar(false);
    group.finish();
}

/// Per-entry rates at 16–22 qubits, scalar vs SIMD — the numbers the
/// runtime calibration (`CostModel::calibrated`) measures at startup,
/// printed here across sizes so the cache-to-DRAM rolloff is visible.
/// Ends with the calibrated model itself for cross-checking, and a
/// `par_threshold` sweep (`SimConfig::with_par_threshold`) so the
/// parallel handoff point can be tuned on multi-core hosts.
fn bench_entry_rates(_c: &mut Criterion) {
    use std::time::Instant;
    let time_best = |reps: usize, f: &mut dyn FnMut()| {
        f(); // warm-up
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };

    println!(
        "\nper-entry rates (Mentries/s), scalar vs {}:",
        simd::backend_name()
    );
    println!(
        "{:>3} {:<18} {:>10} {:>10} {:>9}",
        "n", "kernel", "scalar", "simd", "speedup"
    );
    enum Row {
        Gate(Gate),
        Fused,
    }
    for n in [16usize, 18, 20, 22] {
        let entries = (1usize << n) as f64;
        let fused = dense_block(n, n / 2, 5);
        for (name, row) in [
            ("butterfly_contig", Row::Gate(Gate::h(n / 2))),
            ("diagonal_phase", Row::Gate(Gate::phase(n / 2, 0.3))),
            ("fused_dense_k5", Row::Fused),
        ] {
            // Repeated in-place application of a unitary: norm-preserving,
            // so one state serves the whole measurement.
            let mut sv = StateVector::uniform_superposition(n);
            let body = |sv: &mut StateVector| {
                match &row {
                    Row::Gate(g) => sv.apply(g),
                    Row::Fused => sv.apply_fused_circuit(&fused),
                }
                std::hint::black_box(sv.amplitudes()[1]);
            };
            simd::force_scalar(true);
            let t_scalar = time_best(3, &mut || body(&mut sv));
            simd::force_scalar(false);
            let t_simd = time_best(3, &mut || body(&mut sv));
            // The phase sweep writes half the entries; the others all.
            let written = if name == "diagonal_phase" {
                entries / 2.0
            } else {
                entries
            };
            println!(
                "{:>3} {:<18} {:>10.0} {:>10.0} {:>8.2}x",
                n,
                name,
                written / t_scalar / 1e6,
                written / t_simd / 1e6,
                t_scalar / t_simd
            );
        }
    }

    let model = qcemu_core::CostModel::calibrated();
    println!("\nCostModel::calibrated() on this host/build:");
    println!(
        "  entry_rate {:.0}M/s  fused_entry_rate {:.0}M/s  table_rate {:.0}M/s  fuse_per_gate {:.2}µs",
        model.entry_rate / 1e6,
        model.fused_entry_rate / 1e6,
        model.table_rate / 1e6,
        model.fuse_per_gate * 1e6
    );
    println!(
        "  qpe: gate {:.0}M/s  build {:.0}M/s  gemm {:.2}GF/s  eig {:.2}GF/s",
        model.qpe.gate_rate / 1e6,
        model.qpe.build_rate / 1e6,
        model.qpe.gemm_flops / 1e9,
        model.qpe.eig_flops / 1e9
    );

    // par_threshold sweep: where thread handoff starts to pay (flat on
    // single-core hosts — rayon never engages below 2 threads).
    println!("\npar_threshold sweep (QFT(18), fused k=4):");
    let n = 18;
    let circuit = qft_circuit(n);
    for threshold in [1usize << 12, 1 << 15, 1 << 18, usize::MAX] {
        let config = qcemu_sim::SimConfig::fused(4).with_par_threshold(threshold);
        let mut t = f64::INFINITY;
        for _ in 0..3 {
            let mut sv = StateVector::uniform_superposition(n);
            let t0 = Instant::now();
            sv.run(&circuit, &config);
            t = t.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(sv.amplitudes()[0]);
        }
        let label = if threshold == usize::MAX {
            "serial".to_string()
        } else {
            format!("2^{}", threshold.trailing_zeros())
        };
        println!("  threshold {:>7}: {:>8.2} ms", label, t * 1e3);
    }
    println!();
}

criterion_group!(
    benches,
    bench_gate_kernels,
    bench_qft_paths,
    bench_matmul,
    bench_simd_kernels,
    bench_entry_rates
);
criterion_main!(benches);

//! Small helpers on complex vectors (state-vector style operations).

use crate::complex::C64;

/// Euclidean norm `‖v‖₂`.
pub fn norm2(v: &[C64]) -> f64 {
    v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Normalises `v` in place to unit Euclidean norm. Panics on the zero vector.
pub fn normalize(v: &mut [C64]) {
    let n = norm2(v);
    assert!(n > 0.0, "cannot normalise the zero vector");
    let inv = 1.0 / n;
    for z in v.iter_mut() {
        *z = z.scale(inv);
    }
}

/// Inner product `⟨a|b⟩ = Σ conj(a_i)·b_i` (conjugate-linear in the first
/// argument, physics convention).
pub fn inner(a: &[C64], b: &[C64]) -> C64 {
    assert_eq!(a.len(), b.len(), "inner: length mismatch");
    let mut acc = C64::ZERO;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x.conj() * *y;
    }
    acc
}

/// Fidelity `|⟨a|b⟩|²` between two (assumed normalised) state vectors.
pub fn fidelity(a: &[C64], b: &[C64]) -> f64 {
    inner(a, b).norm_sqr()
}

/// `y ← y + α·x`.
pub fn axpy(alpha: C64, x: &[C64], y: &mut [C64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi = alpha.mul_add(*xi, *yi);
    }
}

/// Maximum component-wise absolute difference between two vectors.
pub fn max_abs_diff(a: &[C64], b: &[C64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

/// Global-phase-insensitive distance: `min_φ ‖a − e^{iφ} b‖_∞`. Quantum
/// states are rays, so tests comparing two execution paths use this.
pub fn max_abs_diff_up_to_phase(a: &[C64], b: &[C64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let ip = inner(b, a);
    let phase = if ip.abs() < 1e-300 {
        C64::ONE
    } else {
        ip.scale(1.0 / ip.abs())
    };
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (*x - phase * *y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn norm_and_normalize() {
        let mut v = vec![c64(3.0, 0.0), c64(0.0, 4.0)];
        assert!((norm2(&v) - 5.0).abs() < 1e-14);
        normalize(&mut v);
        assert!((norm2(&v) - 1.0).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        let mut v = vec![C64::ZERO; 4];
        normalize(&mut v);
    }

    #[test]
    fn inner_is_conjugate_linear_on_left() {
        let a = vec![C64::I];
        let b = vec![C64::ONE];
        // ⟨i·e|e⟩ = conj(i) = −i
        assert!(inner(&a, &b).approx_eq(c64(0.0, -1.0), 1e-15));
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let v = vec![c64(0.6, 0.0), c64(0.0, 0.8)];
        assert!((fidelity(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = vec![C64::ONE, C64::ZERO];
        let b = vec![C64::ZERO, C64::ONE];
        assert!(fidelity(&a, &b) < 1e-15);
    }

    #[test]
    fn axpy_accumulates() {
        let x = vec![C64::ONE, C64::I];
        let mut y = vec![C64::ZERO, C64::ONE];
        axpy(c64(2.0, 0.0), &x, &mut y);
        assert!(y[0].approx_eq(c64(2.0, 0.0), 1e-15));
        assert!(y[1].approx_eq(c64(1.0, 2.0), 1e-15));
    }

    #[test]
    fn phase_insensitive_distance() {
        let a = vec![c64(0.6, 0.0), c64(0.8, 0.0)];
        let phase = C64::cis(1.234);
        let b: Vec<C64> = a.iter().map(|z| *z * phase).collect();
        assert!(
            max_abs_diff(&a, &b) > 0.1,
            "plain distance should see the phase"
        );
        assert!(
            max_abs_diff_up_to_phase(&a, &b) < 1e-12,
            "phase-insensitive distance should not"
        );
    }
}

//! Strassen matrix multiplication.
//!
//! The paper (§3.3) notes that repeated squaring drops from O(2³ⁿ·b) to
//! O(2^{2.8n}·b) with Strassen, moving the emulation/simulation crossover
//! from `b ≥ 2n` to `b ≳ 1.8n`. We implement the classic recursion with
//! padding to even dimensions and a fallback to the blocked GEMM below a
//! threshold, and benchmark both in the Table 2 harness.

use crate::gemm;
use crate::matrix::CMatrix;

/// Recursion cutoff: below this dimension plain GEMM is faster than the
/// seven-product bookkeeping.
pub const DEFAULT_CUTOFF: usize = 128;

/// `C = A · B` via Strassen's algorithm (square inputs required).
pub fn strassen(a: &CMatrix, b: &CMatrix) -> CMatrix {
    strassen_with_cutoff(a, b, DEFAULT_CUTOFF)
}

/// Strassen with an explicit recursion cutoff (used by benches/ablation).
pub fn strassen_with_cutoff(a: &CMatrix, b: &CMatrix, cutoff: usize) -> CMatrix {
    assert!(
        a.is_square() && b.is_square(),
        "strassen: inputs must be square"
    );
    assert_eq!(a.nrows(), b.nrows(), "strassen: dimension mismatch");
    strassen_rec(a, b, cutoff.max(2))
}

fn strassen_rec(a: &CMatrix, b: &CMatrix, cutoff: usize) -> CMatrix {
    let n = a.nrows();
    if n <= cutoff {
        return gemm::gemm(a, b);
    }
    if n % 2 != 0 {
        // Pad by one row/column of zeros, recurse, then trim. The extra
        // zero rows cannot perturb the result.
        let ap = pad_to(a, n + 1);
        let bp = pad_to(b, n + 1);
        let cp = strassen_rec(&ap, &bp, cutoff);
        return cp.submatrix(0, 0, n, n);
    }

    let h = n / 2;
    let a11 = a.submatrix(0, 0, h, h);
    let a12 = a.submatrix(0, h, h, h);
    let a21 = a.submatrix(h, 0, h, h);
    let a22 = a.submatrix(h, h, h, h);
    let b11 = b.submatrix(0, 0, h, h);
    let b12 = b.submatrix(0, h, h, h);
    let b21 = b.submatrix(h, 0, h, h);
    let b22 = b.submatrix(h, h, h, h);

    // The two independent halves of each product pair could run in
    // parallel, but GEMM already saturates the cores; keeping the recursion
    // serial avoids oversubscription.
    let m1 = strassen_rec(&(&a11 + &a22), &(&b11 + &b22), cutoff);
    let m2 = strassen_rec(&(&a21 + &a22), &b11, cutoff);
    let m3 = strassen_rec(&a11, &(&b12 - &b22), cutoff);
    let m4 = strassen_rec(&a22, &(&b21 - &b11), cutoff);
    let m5 = strassen_rec(&(&a11 + &a12), &b22, cutoff);
    let m6 = strassen_rec(&(&a21 - &a11), &(&b11 + &b12), cutoff);
    let m7 = strassen_rec(&(&a12 - &a22), &(&b21 + &b22), cutoff);

    let c11 = &(&(&m1 + &m4) - &m5) + &m7;
    let c12 = &m3 + &m5;
    let c21 = &m2 + &m4;
    let c22 = &(&(&m1 - &m2) + &m3) + &m6;

    let mut c = CMatrix::zeros(n, n);
    c.set_submatrix(0, 0, &c11);
    c.set_submatrix(0, h, &c12);
    c.set_submatrix(h, 0, &c21);
    c.set_submatrix(h, h, &c22);
    c
}

fn pad_to(m: &CMatrix, size: usize) -> CMatrix {
    let mut out = CMatrix::zeros(size, size);
    out.set_submatrix(0, 0, m);
    out
}

/// Approximate flop count of Strassen for an `n×n` complex multiply with the
/// given cutoff (counts the 7-way recursion down to the cutoff, then dense).
pub fn strassen_flops(n: usize, cutoff: usize) -> f64 {
    if n <= cutoff {
        return gemm::gemm_flops(n);
    }
    let h = n.div_ceil(2);
    7.0 * strassen_flops(h, cutoff) + 18.0 * 8.0 * (h as f64) * (h as f64)
}

/// Multiplication strategy selector shared by the QPE emulation paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MulAlgorithm {
    /// Cache-blocked classical O(n³) GEMM.
    Gemm,
    /// Strassen recursion with the default cutoff.
    Strassen,
}

/// Multiplies with the selected algorithm.
pub fn multiply(a: &CMatrix, b: &CMatrix, algo: MulAlgorithm) -> CMatrix {
    match algo {
        MulAlgorithm::Gemm => gemm::gemm(a, b),
        MulAlgorithm::Strassen => strassen(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_gemm_power_of_two() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(64, 64, &mut rng);
        let b = random_matrix(64, 64, &mut rng);
        let s = strassen_with_cutoff(&a, &b, 16);
        let g = gemm::gemm(&a, &b);
        assert!(s.max_abs_diff(&g) < 1e-8);
    }

    #[test]
    fn matches_gemm_odd_size() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = random_matrix(45, 45, &mut rng);
        let b = random_matrix(45, 45, &mut rng);
        let s = strassen_with_cutoff(&a, &b, 8);
        let g = gemm::gemm(&a, &b);
        assert!(s.max_abs_diff(&g) < 1e-8);
    }

    #[test]
    fn small_input_falls_back() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_matrix(10, 10, &mut rng);
        let b = random_matrix(10, 10, &mut rng);
        assert!(strassen(&a, &b).max_abs_diff(&gemm::gemm(&a, &b)) < 1e-12);
    }

    #[test]
    fn identity_neutral_through_recursion() {
        let mut rng = StdRng::seed_from_u64(14);
        let a = random_matrix(33, 33, &mut rng);
        let i = CMatrix::identity(33);
        assert!(strassen_with_cutoff(&a, &i, 4).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "must be square")]
    fn rejects_rectangular() {
        let a = CMatrix::zeros(4, 6);
        let b = CMatrix::zeros(6, 4);
        let _ = strassen(&a, &b);
    }

    #[test]
    fn flop_model_is_subcubic() {
        let dense = gemm::gemm_flops(4096);
        let fast = strassen_flops(4096, 128);
        assert!(
            fast < dense,
            "Strassen flops {fast} should be below dense {dense}"
        );
    }

    #[test]
    fn multiply_dispatch() {
        let mut rng = StdRng::seed_from_u64(15);
        let a = random_matrix(20, 20, &mut rng);
        let b = random_matrix(20, 20, &mut rng);
        let g = multiply(&a, &b, MulAlgorithm::Gemm);
        let s = multiply(&a, &b, MulAlgorithm::Strassen);
        assert!(g.max_abs_diff(&s) < 1e-10);
    }
}

//! Matrix powers by repeated squaring.
//!
//! The QPE emulation path (paper §3.3) needs `U^{2^i}` for `i = 0..b−1`;
//! each is one squaring of the previous power, so a `b`-bit phase estimate
//! costs `b−1` GEMMs after the dense `U` is built.

use crate::complex::C64;
use crate::matrix::CMatrix;
use crate::strassen::{multiply, MulAlgorithm};

/// `U^e` by binary exponentiation with the chosen multiply algorithm.
pub fn matrix_power(u: &CMatrix, mut e: u64, algo: MulAlgorithm) -> CMatrix {
    assert!(u.is_square(), "matrix_power: U must be square");
    let n = u.nrows();
    let mut result = CMatrix::identity(n);
    if e == 0 {
        return result;
    }
    let mut base = u.clone();
    loop {
        if e & 1 == 1 {
            result = multiply(&result, &base, algo);
        }
        e >>= 1;
        if e == 0 {
            break;
        }
        base = multiply(&base, &base, algo);
    }
    result
}

/// The sequence `[U, U², U⁴, …, U^{2^{b−1}}]` exactly as QPE consumes it
/// (paper Eq. 7). Costs `b−1` squarings.
pub fn powers_of_two(u: &CMatrix, b: usize, algo: MulAlgorithm) -> Vec<CMatrix> {
    assert!(u.is_square(), "powers_of_two: U must be square");
    assert!(b >= 1, "powers_of_two: need at least one power");
    let mut out = Vec::with_capacity(b);
    out.push(u.clone());
    for i in 1..b {
        let prev = &out[i - 1];
        out.push(multiply(prev, prev, algo));
    }
    out
}

/// Naive `U^e` by `e − 1` sequential multiplies (reference for tests; this
/// is also exactly what gate-level simulation effectively does).
pub fn matrix_power_naive(u: &CMatrix, e: u64) -> CMatrix {
    assert!(u.is_square());
    let mut result = CMatrix::identity(u.nrows());
    for _ in 0..e {
        result = crate::gemm::gemm(&result, u);
    }
    result
}

/// Applies `diag(λ_k^e)` reconstruction: given an eigendecomposition
/// `U = V Λ V⁻¹` with unitary `V` (normal `U`), computes `U^e` as
/// `V Λ^e V†`. Used by the eigendecomposition QPE strategy.
pub fn power_from_eig(v: &CMatrix, lambdas: &[C64], e: u64) -> CMatrix {
    let n = v.nrows();
    assert_eq!(lambdas.len(), n);
    let powered: Vec<C64> = lambdas.iter().map(|l| l.powu(e)).collect();
    let d = CMatrix::from_diagonal(&powered);
    let vd = crate::gemm::gemm(v, &d);
    crate::gemm::gemm(&vd, &v.adjoint())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::eig::eig;
    use crate::random::{random_matrix, random_unitary};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_zero_is_identity() {
        let mut rng = StdRng::seed_from_u64(40);
        let u = random_matrix(6, 6, &mut rng);
        let p = matrix_power(&u, 0, MulAlgorithm::Gemm);
        assert!(p.max_abs_diff(&CMatrix::identity(6)) < 1e-15);
    }

    #[test]
    fn power_one_is_input() {
        let mut rng = StdRng::seed_from_u64(41);
        let u = random_matrix(6, 6, &mut rng);
        assert!(matrix_power(&u, 1, MulAlgorithm::Gemm).max_abs_diff(&u) < 1e-15);
    }

    #[test]
    fn squaring_matches_naive_powers() {
        let mut rng = StdRng::seed_from_u64(42);
        // Unitary input keeps powers bounded so tolerances stay meaningful.
        let u = random_unitary(8, &mut rng);
        for e in [2u64, 3, 7, 16, 31] {
            let fast = matrix_power(&u, e, MulAlgorithm::Gemm);
            let slow = matrix_power_naive(&u, e);
            assert!(
                fast.max_abs_diff(&slow) < 1e-9,
                "mismatch at e = {e}: {}",
                fast.max_abs_diff(&slow)
            );
        }
    }

    #[test]
    fn strassen_path_agrees() {
        let mut rng = StdRng::seed_from_u64(43);
        let u = random_unitary(12, &mut rng);
        let a = matrix_power(&u, 9, MulAlgorithm::Gemm);
        let b = matrix_power(&u, 9, MulAlgorithm::Strassen);
        assert!(a.max_abs_diff(&b) < 1e-9);
    }

    #[test]
    fn powers_of_two_sequence() {
        let mut rng = StdRng::seed_from_u64(44);
        let u = random_unitary(6, &mut rng);
        let b = 5;
        let seq = powers_of_two(&u, b, MulAlgorithm::Gemm);
        assert_eq!(seq.len(), b);
        for (i, m) in seq.iter().enumerate() {
            let expect = matrix_power_naive(&u, 1 << i);
            assert!(
                m.max_abs_diff(&expect) < 1e-8,
                "U^(2^{i}) wrong by {}",
                m.max_abs_diff(&expect)
            );
        }
    }

    #[test]
    fn unitary_powers_stay_unitary() {
        let mut rng = StdRng::seed_from_u64(45);
        let u = random_unitary(10, &mut rng);
        let seq = powers_of_two(&u, 6, MulAlgorithm::Gemm);
        for (i, m) in seq.iter().enumerate() {
            assert!(m.is_unitary(1e-8), "U^(2^{i}) lost unitarity");
        }
    }

    #[test]
    fn power_from_eig_matches_squaring_for_unitary() {
        let mut rng = StdRng::seed_from_u64(46);
        let u = random_unitary(8, &mut rng);
        let e = eig(&u).unwrap();
        let v = e.vectors.as_ref().unwrap();
        for exp in [1u64, 2, 8, 32] {
            let via_eig = power_from_eig(v, &e.values, exp);
            let via_sq = matrix_power(&u, exp, MulAlgorithm::Gemm);
            assert!(
                via_eig.max_abs_diff(&via_sq) < 1e-6,
                "exp = {exp}: {}",
                via_eig.max_abs_diff(&via_sq)
            );
        }
    }

    #[test]
    fn diagonal_powers_are_entrywise() {
        let d = CMatrix::from_diagonal(&[C64::I, c64(-1.0, 0.0)]);
        let p = matrix_power(&d, 4, MulAlgorithm::Gemm);
        assert!(p[(0, 0)].approx_eq(C64::ONE, 1e-14)); // i⁴ = 1
        assert!(p[(1, 1)].approx_eq(C64::ONE, 1e-14)); // (−1)⁴ = 1
    }
}

//! Householder reduction to upper Hessenberg form.
//!
//! First stage of the `zgeev` replacement (paper §3.3, ref. \[17\]): a general
//! complex matrix `A` is reduced to `H = Q† A Q` with `H` upper Hessenberg
//! (zero below the first subdiagonal) by a sequence of Householder
//! reflectors. The shifted-QR iteration in [`crate::eig`](mod@crate::eig) then works on `H`.

use crate::complex::C64;
use crate::matrix::CMatrix;

/// Result of a Hessenberg reduction: `a = q · h · q†`.
pub struct Hessenberg {
    /// The upper Hessenberg factor.
    pub h: CMatrix,
    /// The accumulated unitary similarity transform (columns are the
    /// orthonormal basis in which `A` is Hessenberg).
    pub q: CMatrix,
}

/// Reduces a square complex matrix to upper Hessenberg form, accumulating
/// the unitary `Q` such that `A = Q H Q†`.
pub fn hessenberg(a: &CMatrix) -> Hessenberg {
    assert!(a.is_square(), "hessenberg: matrix must be square");
    let n = a.nrows();
    let mut h = a.clone();
    let mut q = CMatrix::identity(n);
    if n < 3 {
        return Hessenberg { h, q };
    }

    // Reusable reflector storage to avoid per-step allocation.
    let mut v = vec![C64::ZERO; n];

    for k in 0..n - 2 {
        // Householder vector for column k, rows k+1..n.
        let len = n - (k + 1);
        let mut norm_sq = 0.0;
        for i in 0..len {
            norm_sq += h[(k + 1 + i, k)].norm_sqr();
        }
        let norm = norm_sq.sqrt();
        if norm <= f64::EPSILON * h.frobenius_norm().max(1.0) {
            continue; // column already (numerically) in Hessenberg form
        }
        let x0 = h[(k + 1, k)];
        // alpha = -e^{i·arg(x0)} ‖x‖ ; choosing the sign away from x0 avoids
        // cancellation in v = x − α e₁.
        let phase = if x0.abs() == 0.0 {
            C64::ONE
        } else {
            x0.scale(1.0 / x0.abs())
        };
        let alpha = -phase.scale(norm);

        for i in 0..len {
            v[i] = h[(k + 1 + i, k)];
        }
        v[0] -= alpha;
        let vnorm_sq: f64 = v[..len].iter().map(|z| z.norm_sqr()).sum();
        if vnorm_sq <= f64::EPSILON {
            continue;
        }
        let beta = 2.0 / vnorm_sq;

        // Left update H ← (I − β v v†) H on columns k..n. Columns before k
        // are already zero in rows k+1.. by construction.
        for j in k..n {
            let mut s = C64::ZERO;
            for i in 0..len {
                s += v[i].conj() * h[(k + 1 + i, j)];
            }
            let s = s.scale(beta);
            for i in 0..len {
                let upd = s * v[i];
                h[(k + 1 + i, j)] -= upd;
            }
        }

        // Right update H ← H (I − β v v†) on all rows.
        for r in 0..n {
            let mut s = C64::ZERO;
            for i in 0..len {
                s += h[(r, k + 1 + i)] * v[i];
            }
            let s = s.scale(beta);
            for i in 0..len {
                let upd = s * v[i].conj();
                h[(r, k + 1 + i)] -= upd;
            }
        }

        // Accumulate Q ← Q (I − β v v†).
        for r in 0..n {
            let mut s = C64::ZERO;
            for i in 0..len {
                s += q[(r, k + 1 + i)] * v[i];
            }
            let s = s.scale(beta);
            for i in 0..len {
                let upd = s * v[i].conj();
                q[(r, k + 1 + i)] -= upd;
            }
        }

        // Clean the column explicitly: the reflector maps it to (α, 0, …, 0).
        h[(k + 1, k)] = alpha;
        for i in 1..len {
            h[(k + 1 + i, k)] = C64::ZERO;
        }
    }

    Hessenberg { h, q }
}

/// Checks that `m` is (numerically) upper Hessenberg within `tol`.
pub fn is_upper_hessenberg(m: &CMatrix, tol: f64) -> bool {
    let n = m.nrows();
    for r in 0..n {
        for c in 0..n {
            if r > c + 1 && m[(r, c)].abs() > tol {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;
    use crate::random::{random_matrix, random_unitary};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reconstruct(hes: &Hessenberg) -> CMatrix {
        // A ?= Q H Q†
        gemm(&gemm(&hes.q, &hes.h), &hes.q.adjoint())
    }

    #[test]
    fn small_matrices_pass_through() {
        let mut rng = StdRng::seed_from_u64(20);
        for n in [1, 2] {
            let a = random_matrix(n, n, &mut rng);
            let hes = hessenberg(&a);
            assert!(hes.h.max_abs_diff(&a) < 1e-14);
            assert!(hes.q.max_abs_diff(&CMatrix::identity(n)) < 1e-14);
        }
    }

    #[test]
    fn produces_hessenberg_form_and_reconstructs() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in [3, 4, 8, 20, 40] {
            let a = random_matrix(n, n, &mut rng);
            let hes = hessenberg(&a);
            assert!(
                is_upper_hessenberg(&hes.h, 1e-10 * a.frobenius_norm()),
                "not Hessenberg at n = {n}"
            );
            assert!(hes.q.is_unitary(1e-10), "Q not unitary at n = {n}");
            let rec = reconstruct(&hes);
            assert!(
                rec.max_abs_diff(&a) < 1e-9 * n as f64,
                "reconstruction failed at n = {n}: {}",
                rec.max_abs_diff(&a)
            );
        }
    }

    #[test]
    fn unitary_input_stays_unitary() {
        let mut rng = StdRng::seed_from_u64(22);
        let u = random_unitary(16, &mut rng);
        let hes = hessenberg(&u);
        assert!(
            hes.h.is_unitary(1e-9),
            "Hessenberg form of unitary is unitary"
        );
    }

    #[test]
    fn already_hessenberg_is_stable() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = random_matrix(10, 10, &mut rng);
        let hes1 = hessenberg(&a);
        let hes2 = hessenberg(&hes1.h);
        assert!(is_upper_hessenberg(&hes2.h, 1e-9));
        assert!(reconstruct(&hes2).max_abs_diff(&hes1.h) < 1e-9);
    }

    #[test]
    fn hermitian_input_becomes_tridiagonal() {
        let mut rng = StdRng::seed_from_u64(24);
        let g = random_matrix(12, 12, &mut rng);
        let herm = {
            let adj = g.adjoint();
            (&g + &adj).scale(crate::complex::c64(0.5, 0.0))
        };
        let hes = hessenberg(&herm);
        // Hermitian similarity of Hermitian stays Hermitian; Hessenberg +
        // Hermitian = tridiagonal.
        for r in 0..12 {
            for c in 0..12 {
                if (r as i64 - c as i64).abs() > 1 {
                    assert!(
                        hes.h[(r, c)].abs() < 1e-9,
                        "entry ({r},{c}) = {:?} not zero",
                        hes.h[(r, c)]
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be square")]
    fn rejects_rectangular() {
        let _ = hessenberg(&CMatrix::zeros(3, 4));
    }
}

//! Dense, row-major complex matrices.
//!
//! `CMatrix` is the workhorse behind the paper's quantum-phase-estimation
//! emulation (§3.3): the dense representation of the unitary `U`, its powers
//! computed by repeated squaring, and the input to the eigensolver.

use crate::complex::{c64, C64};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense complex matrix stored row-major in a single contiguous buffer.
#[derive(Clone, PartialEq)]
pub struct CMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates an `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CMatrix {
            nrows,
            ncols,
            data: vec![C64::ZERO; nrows * ncols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in 0..nrows {
            for c in 0..ncols {
                data.push(f(r, c));
            }
        }
        CMatrix { nrows, ncols, data }
    }

    /// Wraps an existing row-major buffer. Panics if the length does not
    /// match `nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<C64>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "buffer length {} does not match {}x{}",
            data.len(),
            nrows,
            ncols
        );
        CMatrix { nrows, ncols, data }
    }

    /// Builds a matrix from rows of real numbers (test convenience).
    pub fn from_real_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        CMatrix::from_fn(nrows, ncols, |r, c| c64(rows[r][c], 0.0))
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[C64]) -> Self {
        let n = diag.len();
        let mut m = CMatrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline(always)]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Raw row-major data.
    #[inline(always)]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its backing buffer.
    pub fn into_vec(self) -> Vec<C64> {
        self.data
    }

    /// A single row as a slice.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &[C64] {
        &self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// A single row as a mutable slice.
    #[inline(always)]
    pub fn row_mut(&mut self, r: usize) -> &mut [C64] {
        &mut self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Copies column `c` into a vector.
    pub fn col(&self, c: usize) -> Vec<C64> {
        (0..self.nrows).map(|r| self[(r, c)]).collect()
    }

    /// The main diagonal.
    pub fn diagonal(&self) -> Vec<C64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.ncols, self.nrows);
        // Blocked transpose for cache friendliness on the large matrices the
        // QPE path produces (dim 2^n).
        const B: usize = 32;
        for rb in (0..self.nrows).step_by(B) {
            for cb in (0..self.ncols).step_by(B) {
                for r in rb..(rb + B).min(self.nrows) {
                    for c in cb..(cb + B).min(self.ncols) {
                        out[(c, r)] = self[(r, c)];
                    }
                }
            }
        }
        out
    }

    /// Conjugate transpose (Hermitian adjoint) `A†`.
    pub fn adjoint(&self) -> CMatrix {
        let mut out = self.transpose();
        for z in out.data.iter_mut() {
            *z = z.conj();
        }
        out
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> CMatrix {
        let mut out = self.clone();
        for z in out.data.iter_mut() {
            *z = z.conj();
        }
        out
    }

    /// Multiplies every entry by a scalar.
    pub fn scale(&self, s: C64) -> CMatrix {
        let mut out = self.clone();
        for z in out.data.iter_mut() {
            *z *= s;
        }
        out
    }

    /// Matrix-vector product `A x`. Rows are contiguous, so each row
    /// reduces through the complex-SIMD dot product ([`crate::simd::cdot`])
    /// — this is the inner loop of the emulator's batched
    /// dense-operator application.
    pub fn matvec(&self, x: &[C64]) -> Vec<C64> {
        assert_eq!(x.len(), self.ncols, "matvec dimension mismatch");
        let mut y = vec![C64::ZERO; self.nrows];
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = crate::simd::cdot(self.row(r), x);
        }
        y
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry modulus, `max_{ij} |a_ij|`.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// `‖A - B‖_F`, panicking on dimension mismatch.
    pub fn frobenius_distance(&self, other: &CMatrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Checks `U† U ≈ I` within `tol` (max-abs of the residual).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.adjoint().mul_naive_or_fast(self);
        let n = self.nrows;
        let mut max_res: f64 = 0.0;
        for r in 0..n {
            for c in 0..n {
                let expect = if r == c { C64::ONE } else { C64::ZERO };
                max_res = max_res.max((prod[(r, c)] - expect).abs());
            }
        }
        max_res <= tol
    }

    /// Kronecker product `self ⊗ other` — how 2×2 gate matrices become
    /// 2ⁿ×2ⁿ operators (paper §2, Eq. 3).
    pub fn kron(&self, other: &CMatrix) -> CMatrix {
        let (m, n) = self.shape();
        let (p, q) = other.shape();
        let mut out = CMatrix::zeros(m * p, n * q);
        for r1 in 0..m {
            for c1 in 0..n {
                let a = self[(r1, c1)];
                if a == C64::ZERO {
                    continue;
                }
                for r2 in 0..p {
                    for c2 in 0..q {
                        out[(r1 * p + r2, c1 * q + c2)] = a * other[(r2, c2)];
                    }
                }
            }
        }
        out
    }

    /// Sum of diagonal entries.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.nrows).map(|i| self[(i, i)]).sum()
    }

    /// Dispatches to the blocked parallel GEMM (used internally by helpers
    /// that need a product without caring about the algorithm).
    pub(crate) fn mul_naive_or_fast(&self, other: &CMatrix) -> CMatrix {
        crate::gemm::gemm(self, other)
    }

    /// Swap two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let ncols = self.ncols;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (first, second) = self.data.split_at_mut(hi * ncols);
        first[lo * ncols..(lo + 1) * ncols].swap_with_slice(&mut second[..ncols]);
    }

    /// Extracts the `rows × cols` sub-matrix starting at `(r0, c0)`.
    pub fn submatrix(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> CMatrix {
        assert!(r0 + rows <= self.nrows && c0 + cols <= self.ncols);
        CMatrix::from_fn(rows, cols, |r, c| self[(r0 + r, c0 + c)])
    }

    /// Writes `block` into this matrix with its top-left corner at `(r0, c0)`.
    pub fn set_submatrix(&mut self, r0: usize, c0: usize, block: &CMatrix) {
        assert!(r0 + block.nrows <= self.nrows && c0 + block.ncols <= self.ncols);
        for r in 0..block.nrows {
            let src = block.row(r);
            let dst = &mut self.row_mut(r0 + r)[c0..c0 + block.ncols];
            dst.copy_from_slice(src);
        }
    }

    /// Maximum absolute difference to another matrix.
    pub fn max_abs_diff(&self, other: &CMatrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = C64;
    #[inline(always)]
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &self.data[r * self.ncols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline(always)]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &mut self.data[r * self.ncols + c]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| *a + *b)
            .collect();
        CMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data,
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| *a - *b)
            .collect();
        CMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data,
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        crate::gemm::gemm(self, rhs)
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.nrows, self.ncols)?;
        let show_r = self.nrows.min(8);
        let show_c = self.ncols.min(8);
        for r in 0..show_r {
            write!(f, "  ")?;
            for c in 0..show_c {
                write!(f, "{:?} ", self[(r, c)])?;
            }
            if self.ncols > show_c {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.nrows > show_r {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_identity_and_indexing() {
        let z = CMatrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&v| v == C64::ZERO));
        let i = CMatrix::identity(3);
        assert_eq!(i[(0, 0)], C64::ONE);
        assert_eq!(i[(0, 1)], C64::ZERO);
        assert_eq!(i.trace(), c64(3.0, 0.0));
    }

    #[test]
    fn from_fn_row_major_order() {
        let m = CMatrix::from_fn(2, 3, |r, c| c64((r * 3 + c) as f64, 0.0));
        assert_eq!(m.as_slice()[4], c64(4.0, 0.0));
        assert_eq!(m[(1, 1)], c64(4.0, 0.0));
        assert_eq!(m.row(1), &[c64(3.0, 0.0), c64(4.0, 0.0), c64(5.0, 0.0)]);
        assert_eq!(m.col(2), vec![c64(2.0, 0.0), c64(5.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_length() {
        let _ = CMatrix::from_vec(2, 2, vec![C64::ZERO; 3]);
    }

    #[test]
    fn transpose_and_adjoint() {
        let m = CMatrix::from_fn(2, 3, |r, c| c64(r as f64, c as f64));
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], m[(1, 2)]);
        let a = m.adjoint();
        assert_eq!(a[(2, 1)], m[(1, 2)].conj());
    }

    #[test]
    fn transpose_blocked_matches_entrywise_for_odd_sizes() {
        let m = CMatrix::from_fn(37, 53, |r, c| c64(r as f64 * 0.1, c as f64 * -0.2));
        let t = m.transpose();
        for r in 0..37 {
            for c in 0..53 {
                assert_eq!(t[(c, r)], m[(r, c)]);
            }
        }
    }

    #[test]
    fn matvec_identity_and_general() {
        let i = CMatrix::identity(4);
        let x: Vec<C64> = (0..4).map(|k| c64(k as f64, -(k as f64))).collect();
        assert_eq!(i.matvec(&x), x);

        let m = CMatrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let y = m.matvec(&[c64(1.0, 0.0), c64(1.0, 0.0)]);
        assert_eq!(y, vec![c64(3.0, 0.0), c64(7.0, 0.0)]);
    }

    #[test]
    fn kron_of_pauli_x_with_identity_matches_paper_eq3() {
        // Paper Eq. (3): X ⊗ I₂ for a NOT on (their) qubit 0 of two.
        let x = CMatrix::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let i2 = CMatrix::identity(2);
        let k = x.kron(&i2);
        let expect = CMatrix::from_real_rows(&[
            &[0.0, 0.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
        ]);
        assert_eq!(k, expect);
    }

    #[test]
    fn frobenius_norm_and_distance() {
        let m = CMatrix::from_real_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        let z = CMatrix::zeros(2, 2);
        assert!((m.frobenius_distance(&z) - 5.0).abs() < 1e-12);
        assert!((m.max_abs() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_check_accepts_hadamard_rejects_shear() {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let h = CMatrix::from_real_rows(&[&[s, s], &[s, -s]]);
        assert!(h.is_unitary(1e-12));
        let shear = CMatrix::from_real_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        assert!(!shear.is_unitary(1e-6));
        let rect = CMatrix::zeros(2, 3);
        assert!(!rect.is_unitary(1e-6));
    }

    #[test]
    fn add_sub_scale() {
        let a = CMatrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = CMatrix::identity(2);
        let s = &a + &b;
        assert_eq!(s[(0, 0)], c64(2.0, 0.0));
        let d = &a - &b;
        assert_eq!(d[(1, 1)], c64(3.0, 0.0));
        let m = a.scale(C64::I);
        assert_eq!(m[(0, 1)], c64(0.0, 2.0));
    }

    #[test]
    fn submatrix_roundtrip() {
        let m = CMatrix::from_fn(5, 5, |r, c| c64((r * 5 + c) as f64, 0.0));
        let b = m.submatrix(1, 2, 3, 2);
        assert_eq!(b.shape(), (3, 2));
        assert_eq!(b[(0, 0)], m[(1, 2)]);
        let mut z = CMatrix::zeros(5, 5);
        z.set_submatrix(1, 2, &b);
        assert_eq!(z[(3, 3)], m[(3, 3)]);
        assert_eq!(z[(0, 0)], C64::ZERO);
    }

    #[test]
    fn swap_rows_works() {
        let mut m = CMatrix::from_fn(3, 2, |r, _| c64(r as f64, 0.0));
        m.swap_rows(0, 2);
        assert_eq!(m[(0, 0)], c64(2.0, 0.0));
        assert_eq!(m[(2, 0)], c64(0.0, 0.0));
        m.swap_rows(1, 1); // no-op
        assert_eq!(m[(1, 0)], c64(1.0, 0.0));
    }

    #[test]
    fn diagonal_extraction() {
        let d = CMatrix::from_diagonal(&[c64(1.0, 0.0), c64(0.0, 2.0)]);
        assert_eq!(d.diagonal(), vec![c64(1.0, 0.0), c64(0.0, 2.0)]);
        assert_eq!(d[(0, 1)], C64::ZERO);
    }
}

//! # qcemu-linalg
//!
//! From-scratch dense complex linear algebra for the `qcemu` workspace — the
//! replacement for the Intel MKL routines used in *High Performance
//! Emulation of Quantum Circuits* (Häner, Steiger, Smelyanskiy, Troyer,
//! SC 2016):
//!
//! * [`gemm`](mod@gemm) — cache-blocked, rayon-parallel complex GEMM (≈ `zgemm`), the
//!   engine of the repeated-squaring QPE emulation path;
//! * [`strassen`](mod@strassen) — sub-cubic multiplication that shifts the paper's
//!   emulation crossover from `b ≥ 2n` to `b ≳ 1.8n` bits of precision;
//! * [`hessenberg`](mod@hessenberg) + [`eig`](mod@eig) — Householder reduction and shifted-QR complex
//!   Schur decomposition with eigenvector back-substitution (≈ `zgeev`);
//! * [`power`] — `U^{2^i}` sequences by repeated squaring (paper Eq. 7);
//! * [`svd`](mod@svd) — one-sided Jacobi SVD (≈ `zgesvd` at small sizes), the
//!   truncation engine of the MPS compressed backend;
//! * [`simd`] — split-lane complex vector primitives (AVX2+FMA behind
//!   the `simd` cargo feature, with runtime detection and a scalar
//!   fallback) that the state-vector/FFT/dense kernels build on;
//! * [`complex`], [`matrix`], [`vector`], [`random`] — supporting types.
//!
//! Everything is pure Rust with no numeric dependencies; parallelism
//! comes from rayon only, and the only `unsafe` is the feature-gated
//! `core::arch` intrinsics inside [`simd`].

pub mod complex;
pub mod eig;
pub mod gemm;
pub mod hessenberg;
pub mod matrix;
pub mod power;
pub mod random;
pub mod simd;
pub mod strassen;
pub mod svd;
pub mod vector;

pub use complex::{c64, C64};
pub use eig::{eig, eig_residual, eigenvalues, schur, Eig, EigError, Schur};
pub use gemm::{gemm, gemm_into, gemm_into_with, gemm_naive, GEMM_PAR_THRESHOLD};
pub use hessenberg::{hessenberg, is_upper_hessenberg, Hessenberg};
pub use matrix::CMatrix;
pub use power::{matrix_power, matrix_power_naive, power_from_eig, powers_of_two};
pub use random::{random_matrix, random_state, random_unitary};
pub use strassen::{multiply, strassen, strassen_with_cutoff, MulAlgorithm};
pub use svd::{svd, svd_reconstruct, Svd};
pub use vector::{axpy, fidelity, inner, max_abs_diff, max_abs_diff_up_to_phase, norm2, normalize};

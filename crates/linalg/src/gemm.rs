//! Blocked, parallel complex matrix–matrix multiplication.
//!
//! This is the stand-in for the paper's MKL `zgemm` calls (§3.3, Table 2):
//! the repeated-squaring path of QPE emulation spends essentially all of its
//! time here. The implementation is a cache-blocked `i-k-j` kernel with the
//! row-panel loop parallelised by rayon; it is not MKL, but it has the right
//! O(n³) constant behaviour so the paper's crossover analysis carries over.

use crate::complex::C64;
use crate::matrix::CMatrix;
use rayon::prelude::*;

/// Default parallelisation threshold of [`gemm_into`], in matrix **rows
/// / columns** (dimension): below a 64×64 output the serial kernel runs
/// without dispatching to the worker pool.
///
/// Note the units. `qcemu_sim::PAR_THRESHOLD` — the state-vector
/// kernels' configurable analogue — counts **amplitude entries** (2¹⁵),
/// not rows: a 64×64 GEMM does O(64³) flops, comparable work to a
/// ~2¹⁵-entry sweep, so the two defaults agree on *work* while differing
/// in unit. To tune per call, use [`gemm_into_with`], mirroring the
/// `_with` kernel variants in `qcemu_sim`.
pub const GEMM_PAR_THRESHOLD: usize = 64;
/// Cache block for the reduction dimension (k). 16 bytes/entry × 256 ≈ 4 KiB
/// per row panel, comfortably inside L1 together with the C row.
const KC: usize = 256;
/// Cache block for output columns (j).
const NC: usize = 512;

/// `C = A · B` with dimension checks. Allocates the output.
pub fn gemm(a: &CMatrix, b: &CMatrix) -> CMatrix {
    let mut c = CMatrix::zeros(a.nrows(), b.ncols());
    gemm_into(a, b, &mut c);
    c
}

/// `C = A · B` into a pre-allocated output (overwrites `c`), at the
/// default [`GEMM_PAR_THRESHOLD`].
///
/// Panics if shapes are inconsistent.
pub fn gemm_into(a: &CMatrix, b: &CMatrix, c: &mut CMatrix) {
    gemm_into_with(a, b, c, GEMM_PAR_THRESHOLD);
}

/// [`gemm_into`] with an explicit parallelisation threshold in matrix
/// **rows / columns**: outputs smaller than `par_threshold` in both
/// dimensions run the serial kernel without a pool dispatch. Pass
/// `usize::MAX` to force serial execution, `0` to always parallelise.
pub fn gemm_into_with(a: &CMatrix, b: &CMatrix, c: &mut CMatrix, par_threshold: usize) {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(ka, kb, "gemm: inner dimensions differ ({ka} vs {kb})");
    assert_eq!(
        c.shape(),
        (m, n),
        "gemm: output shape {:?} does not match ({m}, {n})",
        c.shape()
    );
    for z in c.as_mut_slice().iter_mut() {
        *z = C64::ZERO;
    }
    if m == 0 || n == 0 || ka == 0 {
        return;
    }

    let k = ka;
    let a_data = a.as_slice();
    let b_data = b.as_slice();

    if m < par_threshold && n < par_threshold {
        serial_block(a_data, b_data, c.as_mut_slice(), 0, m, k, n);
        return;
    }

    // Parallelise over disjoint row panels of C. Each rayon task owns a
    // contiguous `rows × n` slab of the output, so no synchronisation is
    // needed inside the kernel.
    let nthreads = rayon::current_num_threads().max(1);
    let rows_per_panel = m.div_ceil(4 * nthreads).max(8);
    c.as_mut_slice()
        .par_chunks_mut(rows_per_panel * n)
        .enumerate()
        .for_each(|(panel, c_panel)| {
            let i0 = panel * rows_per_panel;
            let rows = c_panel.len() / n;
            serial_block(a_data, b_data, c_panel, i0, rows, k, n);
        });
}

/// Computes `rows` rows of C starting at global row `i0`.
/// `c_panel` is the row-major slab for exactly those rows.
fn serial_block(
    a: &[C64],
    b: &[C64],
    c_panel: &mut [C64],
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    // i-k-j order: the inner j loop streams one row of B and one row of C,
    // both contiguous in memory; A is read once per (i, k).
    for kk in (0..k).step_by(KC) {
        let kmax = (kk + KC).min(k);
        for jj in (0..n).step_by(NC) {
            let jmax = (jj + NC).min(n);
            for i in 0..rows {
                let a_row = &a[(i0 + i) * k..(i0 + i) * k + k];
                let c_row = &mut c_panel[i * n + jj..i * n + jmax];
                for kidx in kk..kmax {
                    let aik = a_row[kidx];
                    if aik == C64::ZERO {
                        continue;
                    }
                    let b_row = &b[kidx * n + jj..kidx * n + jmax];
                    // Manually split into re/im streams so LLVM can vectorise.
                    for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv = aik.mul_add(*bv, *cv);
                    }
                }
            }
        }
    }
}

/// Reference O(n³) triple loop used by tests to validate the blocked kernel.
pub fn gemm_naive(a: &CMatrix, b: &CMatrix) -> CMatrix {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(ka, kb, "gemm_naive: inner dimensions differ");
    let mut c = CMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = C64::ZERO;
            for kk in 0..ka {
                acc = a[(i, kk)].mul_add(b[(kk, j)], acc);
            }
            c[(i, j)] = acc;
        }
    }
    c
}

/// Floating point operation count of one `n×n` complex GEMM
/// (8 real flops per complex multiply-add).
pub fn gemm_flops(n: usize) -> f64 {
    8.0 * (n as f64).powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::random::random_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_matrix(17, 17, &mut rng);
        let i = CMatrix::identity(17);
        let left = gemm(&i, &a);
        let right = gemm(&a, &i);
        assert!(left.max_abs_diff(&a) < 1e-12);
        assert!(right.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn matches_naive_on_random_square() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [1, 2, 3, 5, 16, 33, 64, 100] {
            let a = random_matrix(n, n, &mut rng);
            let b = random_matrix(n, n, &mut rng);
            let fast = gemm(&a, &b);
            let slow = gemm_naive(&a, &b);
            assert!(
                fast.max_abs_diff(&slow) < 1e-9 * n as f64,
                "mismatch at n = {n}"
            );
        }
    }

    #[test]
    fn matches_naive_on_rectangular() {
        let mut rng = StdRng::seed_from_u64(3);
        for (m, k, n) in [(3, 7, 2), (70, 5, 130), (1, 64, 1), (65, 65, 1)] {
            let a = random_matrix(m, k, &mut rng);
            let b = random_matrix(k, n, &mut rng);
            let fast = gemm(&a, &b);
            let slow = gemm_naive(&a, &b);
            assert!(
                fast.max_abs_diff(&slow) < 1e-9 * k as f64,
                "mismatch at ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn associativity_on_random_triples() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_matrix(20, 30, &mut rng);
        let b = random_matrix(30, 10, &mut rng);
        let c = random_matrix(10, 25, &mut rng);
        let ab_c = gemm(&gemm(&a, &b), &c);
        let a_bc = gemm(&a, &gemm(&b, &c));
        assert!(ab_c.max_abs_diff(&a_bc) < 1e-8);
    }

    #[test]
    fn complex_entries_multiply_correctly() {
        // [i 0; 0 i] * [i 0; 0 i] = -I
        let im = CMatrix::from_diagonal(&[C64::I, C64::I]);
        let sq = gemm(&im, &im);
        assert!(sq.max_abs_diff(&CMatrix::identity(2).scale(c64(-1.0, 0.0))) < 1e-15);
    }

    #[test]
    fn zero_dimension_is_ok() {
        let a = CMatrix::zeros(0, 5);
        let b = CMatrix::zeros(5, 3);
        let c = gemm(&a, &b);
        assert_eq!(c.shape(), (0, 3));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn dimension_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(4, 2);
        let _ = gemm(&a, &b);
    }

    #[test]
    fn gemm_into_reuses_buffer() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = random_matrix(12, 12, &mut rng);
        let b = random_matrix(12, 12, &mut rng);
        let mut c = random_matrix(12, 12, &mut rng); // garbage, must be overwritten
        gemm_into(&a, &b, &mut c);
        assert!(c.max_abs_diff(&gemm_naive(&a, &b)) < 1e-10);
    }

    #[test]
    fn flops_model() {
        assert_eq!(gemm_flops(2) as u64, 64);
    }

    #[test]
    fn explicit_threshold_matches_default_either_side() {
        // Forced-serial and forced-parallel runs must agree bit-for-bit
        // with the default-threshold result.
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_matrix(70, 40, &mut rng);
        let b = random_matrix(40, 90, &mut rng);
        let mut dflt = CMatrix::zeros(70, 90);
        gemm_into(&a, &b, &mut dflt);
        for thr in [0, usize::MAX] {
            let mut c = CMatrix::zeros(70, 90);
            gemm_into_with(&a, &b, &mut c, thr);
            assert!(c.max_abs_diff(&dflt) == 0.0, "threshold {thr}");
        }
    }
}

//! Double-precision complex scalar type.
//!
//! The whole workspace deliberately avoids external numerics crates; every
//! substrate the paper relies on (MKL `zgemm`/`zgeev`, FFTW) is rebuilt from
//! scratch, starting with the scalar type. `C64` is a plain `repr(C)` pair of
//! `f64`s so a `&[C64]` can be reinterpreted as raw interleaved doubles by
//! kernels that want to.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// Layout-compatible with the classic `double complex` used by the paper's
/// MKL calls: two consecutive doubles, real part first.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Convenience constructor: `c64(re, im)`.
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> C64 {
    C64 { re, im }
}

impl C64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: C64 = c64(0.0, 0.0);
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: C64 = c64(1.0, 0.0);
    /// The imaginary unit, `0 + 1i`.
    pub const I: C64 = c64(0.0, 1.0);

    /// Creates a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a real-valued complex number.
    #[inline(always)]
    pub const fn from_real(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Creates a complex number from polar coordinates `r * e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` — a unit-modulus phase factor. The workhorse of every
    /// twiddle-factor and phase-gate computation in this workspace.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        c64(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared modulus `|z|²`. This is the measurement probability of an
    /// amplitude, so it gets a dedicated, branch-free implementation.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`, computed with `hypot` for overflow safety.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        c64(self.re * s, self.im * s)
    }

    /// Reciprocal `1/z` using the Smith algorithm for numerical robustness.
    #[inline]
    pub fn recip(self) -> Self {
        // Smith's method avoids overflow when |re| and |im| differ wildly.
        if self.re.abs() >= self.im.abs() {
            let r = self.im / self.re;
            let d = self.re + self.im * r;
            c64(1.0 / d, -r / d)
        } else {
            let r = self.re / self.im;
            let d = self.re * r + self.im;
            c64(r / d, -1.0 / d)
        }
    }

    /// Complex square root (principal branch).
    #[inline]
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return C64::ZERO;
        }
        let m = self.abs();
        let re = ((m + self.re) * 0.5).sqrt();
        let im = ((m - self.re) * 0.5).sqrt();
        c64(re, if self.im >= 0.0 { im } else { -im })
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        c64(r * self.im.cos(), r * self.im.sin())
    }

    /// Integer power by binary exponentiation.
    pub fn powu(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = C64::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// Fused multiply-add: `self * b + c`. A single expression so the
    /// optimizer can fuse it; used pervasively by the GEMM micro-kernel.
    #[inline(always)]
    pub fn mul_add(self, b: C64, c: C64) -> C64 {
        c64(
            self.re * b.re - self.im * b.im + c.re,
            self.re * b.im + self.im * b.re + c.im,
        )
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality with absolute tolerance on both components.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, rhs: C64) -> C64 {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline(always)]
    fn sub(self, rhs: C64) -> C64 {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, rhs: C64) -> C64 {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline(always)]
    fn neg(self) -> C64 {
        c64(-self.re, -self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn div(self, rhs: f64) -> C64 {
        self.scale(1.0 / rhs)
    }
}

impl AddAssign for C64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for C64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a C64> for C64 {
    fn sum<I: Iterator<Item = &'a C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + *b)
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+.6}{:+.6}i)", self.re, self.im)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(C64::ZERO, c64(0.0, 0.0));
        assert_eq!(C64::ONE, c64(1.0, 0.0));
        assert_eq!(C64::I, c64(0.0, 1.0));
        assert_eq!(C64::from_real(3.5), c64(3.5, 0.0));
        assert_eq!(C64::from(2.0), c64(2.0, 0.0));
    }

    #[test]
    fn add_sub_mul() {
        let a = c64(1.0, 2.0);
        let b = c64(3.0, -4.0);
        assert_eq!(a + b, c64(4.0, -2.0));
        assert_eq!(a - b, c64(-2.0, 6.0));
        // (1+2i)(3-4i) = 3 - 4i + 6i + 8 = 11 + 2i
        assert_eq!(a * b, c64(11.0, 2.0));
    }

    #[test]
    fn division_matches_multiplication_by_recip() {
        let a = c64(1.0, 2.0);
        let b = c64(3.0, -4.0);
        let q = a / b;
        assert!((q * b).approx_eq(a, TOL));
    }

    #[test]
    fn recip_handles_extreme_magnitudes() {
        let z = c64(1e300, 1e-300);
        let r = z.recip();
        assert!(r.is_finite(), "Smith recip must not overflow: {r:?}");
        let z2 = c64(1e-300, 1e300);
        assert!(z2.recip().is_finite());
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((C64::I * C64::I).approx_eq(c64(-1.0, 0.0), TOL));
    }

    #[test]
    fn conj_norm_arg() {
        let z = c64(3.0, 4.0);
        assert_eq!(z.conj(), c64(3.0, -4.0));
        assert!((z.norm_sqr() - 25.0).abs() < TOL);
        assert!((z.abs() - 5.0).abs() < TOL);
        assert!((c64(0.0, 1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < TOL);
    }

    #[test]
    fn cis_and_from_polar() {
        let t = 0.7;
        let z = C64::cis(t);
        assert!((z.abs() - 1.0).abs() < TOL);
        assert!((z.arg() - t).abs() < TOL);
        let w = C64::from_polar(2.0, -1.1);
        assert!((w.abs() - 2.0).abs() < TOL);
        assert!((w.arg() + 1.1).abs() < TOL);
    }

    #[test]
    fn exp_euler_identity() {
        // e^{iπ} = -1
        let z = (C64::I * std::f64::consts::PI).exp();
        assert!(z.approx_eq(c64(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn sqrt_principal_branch() {
        let z = c64(-4.0, 0.0);
        let s = z.sqrt();
        assert!(s.approx_eq(c64(0.0, 2.0), TOL));
        assert!((s * s).approx_eq(z, 1e-10));
        // sqrt of negative-imaginary stays in the lower half-plane
        let w = c64(0.0, -2.0).sqrt();
        assert!(w.im < 0.0);
        assert!((w * w).approx_eq(c64(0.0, -2.0), 1e-10));
        assert_eq!(C64::ZERO.sqrt(), C64::ZERO);
    }

    #[test]
    fn powu_matches_repeated_multiplication() {
        let z = c64(0.3, -0.8);
        let mut acc = C64::ONE;
        for e in 0..12u64 {
            assert!(z.powu(e).approx_eq(acc, 1e-9), "e = {e}");
            acc *= z;
        }
    }

    #[test]
    fn mul_add_consistency() {
        let a = c64(1.5, -0.5);
        let b = c64(-2.0, 0.25);
        let c = c64(0.1, 0.9);
        assert!(a.mul_add(b, c).approx_eq(a * b + c, TOL));
    }

    #[test]
    fn sum_iterator() {
        let v = vec![c64(1.0, 1.0); 10];
        let s: C64 = v.iter().sum();
        assert!(s.approx_eq(c64(10.0, 10.0), TOL));
        let s2: C64 = v.into_iter().sum();
        assert!(s2.approx_eq(c64(10.0, 10.0), TOL));
    }

    #[test]
    fn assign_ops() {
        let mut z = c64(1.0, 1.0);
        z += c64(1.0, 0.0);
        assert_eq!(z, c64(2.0, 1.0));
        z -= c64(0.0, 1.0);
        assert_eq!(z, c64(2.0, 0.0));
        z *= c64(0.0, 1.0);
        assert_eq!(z, c64(0.0, 2.0));
        z *= 2.0;
        assert_eq!(z, c64(0.0, 4.0));
        z /= c64(0.0, 4.0);
        assert!(z.approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn real_scalar_ops() {
        let z = c64(1.0, -2.0);
        assert_eq!(z * 2.0, c64(2.0, -4.0));
        assert_eq!(2.0 * z, c64(2.0, -4.0));
        assert_eq!(z / 2.0, c64(0.5, -1.0));
        assert_eq!(-z, c64(-1.0, 2.0));
    }

    #[test]
    fn nan_detection() {
        assert!(c64(f64::NAN, 0.0).is_nan());
        assert!(c64(0.0, f64::NAN).is_nan());
        assert!(!c64(1.0, 2.0).is_nan());
        assert!(!c64(f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn layout_is_two_doubles() {
        assert_eq!(std::mem::size_of::<C64>(), 16);
        assert_eq!(std::mem::align_of::<C64>(), 8);
    }
}

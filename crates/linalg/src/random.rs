//! Random matrices and Haar-random unitaries for tests and benchmarks.

use crate::complex::{c64, C64};
use crate::matrix::CMatrix;
use rand::Rng;

/// Samples one standard normal variate via Box–Muller (we avoid extra
/// dependencies such as `rand_distr`; two uniforms per pair of normals).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// A complex number with i.i.d. standard normal components.
pub fn standard_complex_normal(rng: &mut impl Rng) -> C64 {
    c64(standard_normal(rng), standard_normal(rng))
}

/// Dense matrix with i.i.d. complex Gaussian entries (a Ginibre matrix).
pub fn random_matrix(nrows: usize, ncols: usize, rng: &mut impl Rng) -> CMatrix {
    CMatrix::from_fn(nrows, ncols, |_, _| standard_complex_normal(rng))
}

/// Haar-distributed random unitary: QR of a Ginibre matrix by modified
/// Gram–Schmidt, with the R-diagonal phases divided out (Mezzadri's recipe).
pub fn random_unitary(n: usize, rng: &mut impl Rng) -> CMatrix {
    let g = random_matrix(n, n, rng);
    // Work column-wise: collect columns, orthonormalise, write back.
    let mut cols: Vec<Vec<C64>> = (0..n).map(|c| g.col(c)).collect();
    let mut rdiag = vec![C64::ONE; n];
    for j in 0..n {
        for i in 0..j {
            // proj = <cols[i], cols[j]>
            let mut proj = C64::ZERO;
            for k in 0..n {
                proj += cols[i][k].conj() * cols[j][k];
            }
            for k in 0..n {
                let s = proj * cols[i][k];
                cols[j][k] -= s;
            }
        }
        let norm = cols[j].iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        assert!(
            norm > 1e-12,
            "degenerate random matrix (astronomically unlikely)"
        );
        for z in cols[j].iter_mut() {
            *z = z.scale(1.0 / norm);
        }
        // Phase correction for Haar measure: multiply the column by the
        // conjugate phase of the original overlap. With MGS the R diagonal
        // is the pre-normalisation norm (real, positive), so additionally
        // randomise the phase explicitly.
        let theta = rng.gen::<f64>() * std::f64::consts::TAU;
        rdiag[j] = C64::cis(theta);
        for z in cols[j].iter_mut() {
            *z = *z * rdiag[j];
        }
    }
    CMatrix::from_fn(n, n, |r, c| cols[c][r])
}

/// Random diagonal unitary `diag(e^{iθ_k})`.
pub fn random_diagonal_unitary(n: usize, rng: &mut impl Rng) -> CMatrix {
    let diag: Vec<C64> = (0..n)
        .map(|_| C64::cis(rng.gen::<f64>() * std::f64::consts::TAU))
        .collect();
    CMatrix::from_diagonal(&diag)
}

/// Random state vector (normalised complex Gaussian).
pub fn random_state(dim: usize, rng: &mut impl Rng) -> Vec<C64> {
    let mut v: Vec<C64> = (0..dim).map(|_| standard_complex_normal(rng)).collect();
    let norm = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    for z in v.iter_mut() {
        *z = z.scale(1.0 / norm);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn random_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(8);
        for n in [1, 2, 3, 8, 17] {
            let u = random_unitary(n, &mut rng);
            assert!(u.is_unitary(1e-9), "n = {n}");
        }
    }

    #[test]
    fn random_diagonal_unitary_is_unitary_and_diagonal() {
        let mut rng = StdRng::seed_from_u64(9);
        let u = random_diagonal_unitary(6, &mut rng);
        assert!(u.is_unitary(1e-10));
        for r in 0..6 {
            for c in 0..6 {
                if r != c {
                    assert_eq!(u[(r, c)], C64::ZERO);
                }
            }
        }
    }

    #[test]
    fn random_state_is_normalised() {
        let mut rng = StdRng::seed_from_u64(10);
        let v = random_state(128, &mut rng);
        let norm: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinism_with_seed() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = random_matrix(5, 5, &mut r1);
        let b = random_matrix(5, 5, &mut r2);
        assert!(a.max_abs_diff(&b) == 0.0);
    }
}

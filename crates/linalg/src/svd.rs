//! Singular value decomposition by one-sided (Hestenes) Jacobi rotations.
//!
//! The MPS backend truncates bond dimensions by SVD-ing small reshaped
//! site tensors — matrices of shape `(2χ × 2χ)` at most, where χ is the
//! bond cap. At those sizes a one-sided Jacobi sweep is simpler and more
//! accurate than bidiagonalisation: it orthogonalises the columns of `A`
//! in place, so the singular values emerge as column norms with
//! componentwise-relative accuracy, and no separate backward pass is
//! needed. Complex pairs are handled by factoring the phase of the
//! off-diagonal Gram entry out of the rotation (Forsythe–Henrici).
//!
//! `A = U · diag(S) · Vᴴ` with `U` (m×k) having orthonormal columns,
//! `S` (k) real non-negative descending, `Vᴴ` (k×n) with orthonormal
//! rows, `k = min(m, n)`. Rank-deficient inputs yield zero singular
//! values with zero `U` columns (no arbitrary orthonormal completion).

use crate::complex::C64;
use crate::matrix::CMatrix;

/// Result of [`svd`]: `a ≈ u · diag(s) · vt`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `m × k`, orthonormal columns (zero columns
    /// for zero singular values).
    pub u: CMatrix,
    /// Singular values, descending, length `k = min(m, n)`.
    pub s: Vec<f64>,
    /// Conjugate-transposed right singular vectors, `k × n`.
    pub vt: CMatrix,
}

/// Relative threshold under which an off-diagonal Gram entry counts as
/// already annihilated. `f64::EPSILON`-scaled: rotations stop improving
/// once |⟨wₚ,w_q⟩| sits in the rounding noise of ‖wₚ‖‖w_q‖.
const JACOBI_TOL: f64 = 1e-15;

/// Sweeps past this count indicate a pathological input; the partial
/// factorisation is still returned (columns as orthogonal as doubles
/// allow). Well-conditioned inputs converge in ≤ 10 sweeps.
const MAX_SWEEPS: usize = 40;

/// Full (thin) SVD of a complex matrix. See module docs for conventions.
pub fn svd(a: &CMatrix) -> Svd {
    let (m, n) = (a.nrows(), a.ncols());
    if m >= n {
        svd_tall(a)
    } else {
        // A = (Aᴴ)ᴴ: factor the tall adjoint and swap the roles of the
        // singular vector sets. Aᴴ = U'ΣV'ᴴ  ⇒  A = V'ΣU'ᴴ.
        let t = svd_tall(&a.adjoint());
        let u = t.vt.adjoint();
        let vt = t.u.adjoint();
        Svd { u, s: t.s, vt }
    }
}

/// One-sided Jacobi on a tall (m ≥ n) matrix: rotate column pairs of a
/// working copy `W` until all pairs are orthogonal, accumulating the
/// rotations into `V`; then `σⱼ = ‖wⱼ‖`, `uⱼ = wⱼ/σⱼ`, and `W = A·V`
/// gives `A = (UΣ)Vᴴ`.
fn svd_tall(a: &CMatrix) -> Svd {
    let (m, n) = (a.nrows(), a.ncols());
    // Column-major working storage: every rotation touches two whole
    // columns, so keep each contiguous.
    let mut w: Vec<Vec<C64>> = (0..n).map(|j| a.col(j)).collect();
    let mut v: Vec<Vec<C64>> = (0..n)
        .map(|j| {
            let mut e = vec![C64::ZERO; n];
            e[j] = C64::ONE;
            e
        })
        .collect();

    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                // 2×2 Gram block of columns (p, q).
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = C64::ZERO;
                for i in 0..m {
                    let wp = w[p][i];
                    let wq = w[q][i];
                    alpha += wp.norm_sqr();
                    beta += wq.norm_sqr();
                    gamma += wp.conj() * wq;
                }
                let g = gamma.abs();
                // √α·√β, not √(α·β): the product underflows to 0 for
                // column norms ≲ 1e-154, which would let a denormal γ
                // through and turn 1/g into ∞ inside the rotation.
                if g <= JACOBI_TOL * alpha.sqrt() * beta.sqrt() || g == 0.0 {
                    continue;
                }
                rotated = true;
                // Factor out the phase of γ, then the classic symmetric
                // Jacobi rotation on [[α, |γ|], [|γ|, β]]. Component-wise
                // division (not ·1/g, whose reciprocal overflows for
                // denormal g) keeps the phase finite for any γ ≠ 0.
                let phase = C64::new(gamma.re / g, gamma.im / g); // e^{iφ}
                let zeta = (beta - alpha) / (2.0 * g);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // [wₚ', w_q'] = [wₚ, w_q] · [[c, s], [-s·e^{-iφ}, c·e^{-iφ}]]
                let se = phase.conj().scale(s);
                let ce = phase.conj().scale(c);
                rotate_pair(&mut w, p, q, c, s, se, ce);
                rotate_pair(&mut v, p, q, c, s, se, ce);
            }
        }
        if !rotated {
            break;
        }
    }

    // Column norms are the singular values; sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = w
        .iter()
        .map(|col| col.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt())
        .collect();
    order.sort_by(|&i, &j| norms[j].total_cmp(&norms[i]));

    let s: Vec<f64> = order.iter().map(|&j| norms[j]).collect();
    let u = CMatrix::from_fn(m, n, |r, c| {
        let j = order[c];
        if norms[j] > 0.0 {
            w[j][r].scale(1.0 / norms[j])
        } else {
            C64::ZERO
        }
    });
    let vt = CMatrix::from_fn(n, n, |r, c| v[order[r]][c].conj());
    Svd { u, s, vt }
}

/// Applies the 2×2 right-rotation to columns `p`, `q` of `cols`.
#[inline]
fn rotate_pair(cols: &mut [Vec<C64>], p: usize, q: usize, c: f64, s: f64, se: C64, ce: C64) {
    let (head, tail) = cols.split_at_mut(q);
    let (cp, cq) = (&mut head[p], &mut tail[0]);
    for i in 0..cp.len() {
        let a = cp[i];
        let b = cq[i];
        cp[i] = a.scale(c) - se * b;
        cq[i] = a.scale(s) + ce * b;
    }
}

/// Reconstructs `u · diag(s) · vt` (test/debug helper).
pub fn svd_reconstruct(f: &Svd) -> CMatrix {
    let k = f.s.len();
    let (m, n) = (f.u.nrows(), f.vt.ncols());
    CMatrix::from_fn(m, n, |r, c| {
        let mut acc = C64::ZERO;
        for j in 0..k {
            acc += f.u[(r, j)].scale(f.s[j]) * f.vt[(j, c)];
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::random::{random_matrix, random_unitary};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check(a: &CMatrix, tol: f64) {
        let f = svd(a);
        let k = a.nrows().min(a.ncols());
        assert_eq!(f.s.len(), k);
        assert_eq!((f.u.nrows(), f.u.ncols()), (a.nrows(), k));
        assert_eq!((f.vt.nrows(), f.vt.ncols()), (k, a.ncols()));
        // Descending, non-negative.
        for j in 0..k {
            assert!(f.s[j] >= 0.0, "negative σ_{j} = {}", f.s[j]);
            if j + 1 < k {
                assert!(f.s[j] >= f.s[j + 1], "σ not sorted: {:?}", f.s);
            }
        }
        // Reconstruction.
        let err = svd_reconstruct(&f).max_abs_diff(a);
        assert!(err < tol, "reconstruction error {err} (tol {tol})");
        // Orthonormal columns of U / rows of Vᴴ (skip zero σ columns).
        for i in 0..k {
            for j in 0..k {
                if f.s[i] == 0.0 || f.s[j] == 0.0 {
                    continue;
                }
                let mut uij = C64::ZERO;
                for r in 0..a.nrows() {
                    uij += f.u[(r, i)].conj() * f.u[(r, j)];
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((uij.abs() - want).abs() < tol, "UᴴU[{i},{j}] = {uij:?}");
                let mut vij = C64::ZERO;
                for c in 0..a.ncols() {
                    vij += f.vt[(i, c)] * f.vt[(j, c)].conj();
                }
                assert!((vij.abs() - want).abs() < tol, "VᴴV[{i},{j}] = {vij:?}");
            }
        }
    }

    #[test]
    fn identity_and_diagonal() {
        check(&CMatrix::identity(4), 1e-12);
        let d = CMatrix::from_diagonal(&[c64(3.0, 0.0), c64(0.0, 2.0), c64(-1.0, 0.0)]);
        let f = svd(&d);
        assert!((f.s[0] - 3.0).abs() < 1e-12);
        assert!((f.s[1] - 2.0).abs() < 1e-12);
        assert!((f.s[2] - 1.0).abs() < 1e-12);
        check(&d, 1e-12);
    }

    #[test]
    fn known_rank_one() {
        // outer product of [1, 2i] and [3, 4]ᴴ: single σ = √5·5 = 5√5.
        let a = CMatrix::from_fn(2, 2, |r, c| {
            let u = [c64(1.0, 0.0), c64(0.0, 2.0)][r];
            let v = [c64(3.0, 0.0), c64(4.0, 0.0)][c];
            u * v.conj()
        });
        let f = svd(&a);
        assert!((f.s[0] - (5.0f64.sqrt() * 5.0)).abs() < 1e-10, "{:?}", f.s);
        assert!(f.s[1].abs() < 1e-10);
        check(&a, 1e-10);
    }

    #[test]
    fn random_square_tall_wide() {
        let mut rng = StdRng::seed_from_u64(0x5fd);
        for (m, n) in [(1, 1), (2, 2), (5, 5), (8, 3), (3, 8), (16, 16), (7, 12)] {
            let a = random_matrix(m, n, &mut rng);
            check(&a, 1e-9 * (m.max(n) as f64));
        }
    }

    #[test]
    fn unitary_has_unit_singular_values() {
        let mut rng = StdRng::seed_from_u64(0x51d);
        let u = random_unitary(6, &mut rng);
        let f = svd(&u);
        for s in &f.s {
            assert!((s - 1.0).abs() < 1e-9, "σ = {s}");
        }
    }

    #[test]
    fn zero_matrix() {
        let f = svd(&CMatrix::zeros(3, 2));
        assert!(f.s.iter().all(|&s| s == 0.0));
        assert!(svd_reconstruct(&f).max_abs_diff(&CMatrix::zeros(3, 2)) == 0.0);
    }
}

//! Complex Schur decomposition and eigensolver (the `zgeev` replacement).
//!
//! Pipeline (paper §3.3, ref \[17\]): Householder Hessenberg reduction →
//! implicitly shifted QR iteration with Givens rotations (Wilkinson shift,
//! aggressive deflation) → upper triangular Schur factor `T` with
//! `A = Z T Z†` → eigenvalues on the diagonal of `T` and, on request,
//! eigenvectors by back-substitution on `T` mapped through `Z`.
//!
//! The QPE emulator uses this to read off eigenphases of a unitary operator
//! directly instead of simulating the phase-estimation circuit.

use crate::complex::{c64, C64};
use crate::hessenberg::hessenberg;
use crate::matrix::CMatrix;

/// Maximum QR iterations per eigenvalue before giving up.
const MAX_ITERS_PER_EIGENVALUE: usize = 60;

/// Errors from the eigensolver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EigError {
    /// The QR iteration failed to deflate an eigenvalue within the
    /// iteration budget. Practically unreachable for the well-conditioned
    /// (unitary / near-normal) matrices this workspace produces.
    NoConvergence { remaining: usize },
    /// Input was not square.
    NotSquare,
}

impl std::fmt::Display for EigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EigError::NoConvergence { remaining } => {
                write!(
                    f,
                    "QR iteration did not converge; {remaining} eigenvalues remain"
                )
            }
            EigError::NotSquare => write!(f, "eigendecomposition requires a square matrix"),
        }
    }
}

impl std::error::Error for EigError {}

/// A complex Schur decomposition `A = Z T Z†` with `T` upper triangular and
/// `Z` unitary.
pub struct Schur {
    /// Upper triangular Schur factor; eigenvalues on the diagonal.
    pub t: CMatrix,
    /// Unitary Schur vectors.
    pub z: CMatrix,
}

/// Full eigendecomposition: eigenvalues and (optionally) right eigenvectors.
pub struct Eig {
    /// Eigenvalues (diagonal of the Schur factor).
    pub values: Vec<C64>,
    /// Right eigenvectors as matrix columns; `vectors.col(j)` satisfies
    /// `A v_j ≈ λ_j v_j`. Present when requested.
    pub vectors: Option<CMatrix>,
}

/// Complex Givens rotation `[c s; -s̄ c]` with real `c ≥ 0` zeroing `b`
/// against `a`: `[c s; -s̄ c]·[a; b] = [r; 0]`.
#[inline]
fn givens(a: C64, b: C64) -> (f64, C64, C64) {
    let bn = b.abs();
    if bn == 0.0 {
        return (1.0, C64::ZERO, a);
    }
    let an = a.abs();
    if an == 0.0 {
        // c = 0, s = b̄/|b| gives r = |b|.
        return (0.0, b.conj().scale(1.0 / bn), c64(bn, 0.0));
    }
    let d = (an * an + bn * bn).sqrt();
    let c = an / d;
    let phase_a = a.scale(1.0 / an);
    let s = phase_a * b.conj().scale(1.0 / d);
    let r = phase_a.scale(d);
    (c, s, r)
}

/// Computes the complex Schur decomposition of a square matrix.
pub fn schur(a: &CMatrix) -> Result<Schur, EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare);
    }
    let hes = hessenberg(a);
    schur_from_hessenberg(hes.h, hes.q)
}

/// QR iteration on an upper Hessenberg matrix `h`, accumulating the given
/// initial transform `z` (pass identity if `h` itself is the target).
pub fn schur_from_hessenberg(mut h: CMatrix, mut z: CMatrix) -> Result<Schur, EigError> {
    let n = h.nrows();
    if n == 0 {
        return Ok(Schur { t: h, z });
    }
    let norm = h.frobenius_norm().max(f64::MIN_POSITIVE);
    let eps = f64::EPSILON;

    let mut hi = n - 1;
    let mut iters_this_eig = 0usize;

    'outer: loop {
        // Deflate trailing 1×1 blocks as long as possible.
        loop {
            if hi == 0 {
                break 'outer;
            }
            let sub = h[(hi, hi - 1)].abs();
            let scale = h[(hi - 1, hi - 1)].abs() + h[(hi, hi)].abs();
            if sub <= eps * scale.max(eps * norm) {
                h[(hi, hi - 1)] = C64::ZERO;
                hi -= 1;
                iters_this_eig = 0;
            } else {
                break;
            }
        }

        // Find the start of the active unreduced block [lo, hi].
        let mut lo = hi;
        while lo > 0 {
            let sub = h[(lo, lo - 1)].abs();
            let scale = h[(lo - 1, lo - 1)].abs() + h[(lo, lo)].abs();
            if sub <= eps * scale.max(eps * norm) {
                h[(lo, lo - 1)] = C64::ZERO;
                break;
            }
            lo -= 1;
        }

        iters_this_eig += 1;
        if iters_this_eig > MAX_ITERS_PER_EIGENVALUE {
            return Err(EigError::NoConvergence { remaining: hi + 1 });
        }

        // Wilkinson shift from the trailing 2×2 of the active block; an
        // exceptional (ad hoc) shift every 10 stalled iterations breaks
        // symmetry-induced cycles.
        let shift = if iters_this_eig % 10 == 0 {
            h[(hi, hi)] + c64(0.75 * h[(hi, hi - 1)].abs(), 0.0)
        } else {
            wilkinson_shift(
                h[(hi - 1, hi - 1)],
                h[(hi - 1, hi)],
                h[(hi, hi - 1)],
                h[(hi, hi)],
            )
        };

        // Implicit single-shift QR sweep on [lo, hi]: create the bulge from
        // the first column of (H − σI) and chase it down the subdiagonal.
        let mut x = h[(lo, lo)] - shift;
        let mut y = h[(lo + 1, lo)];
        for k in lo..hi {
            let (c, s, _r) = givens(x, y);
            let sc = s.conj();

            // Row rotation: rows k, k+1, columns k.saturating_sub(1)..n —
            // the k−1 column holds the bulge created by the previous step.
            let col0 = if k > lo { k - 1 } else { lo };
            for j in col0..n {
                let t1 = h[(k, j)];
                let t2 = h[(k + 1, j)];
                h[(k, j)] = t1.scale(c) + s * t2;
                h[(k + 1, j)] = t2.scale(c) - sc * t1;
            }
            // Column rotation: columns k, k+1, rows 0..=min(k+2, hi).
            let rmax = (k + 2).min(hi);
            for i in 0..=rmax {
                let t1 = h[(i, k)];
                let t2 = h[(i, k + 1)];
                h[(i, k)] = t1.scale(c) + sc * t2;
                h[(i, k + 1)] = t2.scale(c) - s * t1;
            }
            // Accumulate in Z (full height).
            for i in 0..n {
                let t1 = z[(i, k)];
                let t2 = z[(i, k + 1)];
                z[(i, k)] = t1.scale(c) + sc * t2;
                z[(i, k + 1)] = t2.scale(c) - s * t1;
            }

            if k + 1 < hi {
                x = h[(k + 1, k)];
                y = h[(k + 2, k)];
            }
        }
    }

    // Zero out strict lower triangle (numerical dust below the diagonal).
    for r in 1..n {
        for c in 0..r {
            h[(r, c)] = C64::ZERO;
        }
    }
    Ok(Schur { t: h, z })
}

/// Eigenvalue of the 2×2 block `[a b; c d]` closest to `d`.
fn wilkinson_shift(a: C64, b: C64, c: C64, d: C64) -> C64 {
    let tr = a + d;
    let det = a * d - b * c;
    let disc = (tr * tr - det.scale(4.0)).sqrt();
    let l1 = (tr + disc).scale(0.5);
    let l2 = (tr - disc).scale(0.5);
    if (l1 - d).abs() <= (l2 - d).abs() {
        l1
    } else {
        l2
    }
}

/// Computes eigenvalues only.
pub fn eigenvalues(a: &CMatrix) -> Result<Vec<C64>, EigError> {
    Ok(schur(a)?.t.diagonal())
}

/// Computes eigenvalues and right eigenvectors (the `zgeev` work-alike).
pub fn eig(a: &CMatrix) -> Result<Eig, EigError> {
    let s = schur(a)?;
    let values = s.t.diagonal();
    let vectors = triangular_eigenvectors(&s.t, &s.z);
    Ok(Eig {
        values,
        vectors: Some(vectors),
    })
}

/// Right eigenvectors of `A = Z T Z†` by back-substitution on the upper
/// triangular `T`, then mapping through `Z`. Column `j` of the result is a
/// unit-norm eigenvector for `T[j][j]`.
fn triangular_eigenvectors(t: &CMatrix, z: &CMatrix) -> CMatrix {
    let n = t.nrows();
    let mut vecs = CMatrix::zeros(n, n);
    let tnorm = t.frobenius_norm().max(f64::MIN_POSITIVE);
    let smin = f64::EPSILON * tnorm;

    let mut x = vec![C64::ZERO; n];
    for j in 0..n {
        let lambda = t[(j, j)];
        // Solve (T − λI)x = 0 with x[j] = 1, support on 0..=j.
        for xi in x.iter_mut() {
            *xi = C64::ZERO;
        }
        x[j] = C64::ONE;
        for i in (0..j).rev() {
            let mut s = C64::ZERO;
            for (k, xk) in x.iter().enumerate().take(j + 1).skip(i + 1) {
                s += t[(i, k)] * *xk;
            }
            let mut denom = t[(i, i)] - lambda;
            if denom.abs() < smin {
                // Perturb a (near-)defective pivot; standard LAPACK trick.
                denom = c64(smin, 0.0);
            }
            x[i] = -s / denom;
        }
        // Map through Z and normalise: v = Z x.
        let mut norm_sq = 0.0;
        for r in 0..n {
            let mut acc = C64::ZERO;
            for (k, xk) in x.iter().enumerate().take(j + 1) {
                acc += z[(r, k)] * *xk;
            }
            vecs[(r, j)] = acc;
            norm_sq += acc.norm_sqr();
        }
        let inv = 1.0 / norm_sq.sqrt();
        for r in 0..n {
            vecs[(r, j)] = vecs[(r, j)].scale(inv);
        }
    }
    vecs
}

/// Residual `max_j ‖A v_j − λ_j v_j‖₂` of an eigendecomposition; the test
/// suite uses this as its primary correctness metric.
pub fn eig_residual(a: &CMatrix, e: &Eig) -> f64 {
    let v = e.vectors.as_ref().expect("eig_residual needs eigenvectors");
    let n = a.nrows();
    let mut worst: f64 = 0.0;
    for j in 0..n {
        let col = v.col(j);
        let av = a.matvec(&col);
        let mut res = 0.0;
        for r in 0..n {
            res += (av[r] - e.values[j] * col[r]).norm_sqr();
        }
        worst = worst.max(res.sqrt());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;
    use crate::random::{random_diagonal_unitary, random_matrix, random_unitary};
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn sort_by_arg(mut v: Vec<C64>) -> Vec<C64> {
        v.sort_by(|a, b| a.arg().partial_cmp(&b.arg()).unwrap());
        v
    }

    #[test]
    fn givens_zeroes_second_component() {
        let mut rng = StdRng::seed_from_u64(30);
        for _ in 0..50 {
            let a = crate::random::standard_complex_normal(&mut rng);
            let b = crate::random::standard_complex_normal(&mut rng);
            let (c, s, r) = givens(a, b);
            let top = a.scale(c) + s * b;
            let bot = b.scale(c) - s.conj() * a;
            assert!(top.approx_eq(r, 1e-12), "r mismatch");
            assert!(bot.abs() < 1e-12, "residual {bot:?}");
            assert!((c * c + s.norm_sqr() - 1.0).abs() < 1e-12, "not a rotation");
        }
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let d = CMatrix::from_diagonal(&[c64(1.0, 0.0), c64(-2.0, 0.5), c64(0.0, 3.0)]);
        let vals = sort_by_arg(eigenvalues(&d).unwrap());
        let expect = sort_by_arg(vec![c64(1.0, 0.0), c64(-2.0, 0.5), c64(0.0, 3.0)]);
        for (a, b) in vals.iter().zip(expect.iter()) {
            assert!(a.approx_eq(*b, 1e-10), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[0, 1], [1, 0]] has eigenvalues ±1.
        let x = CMatrix::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let mut vals = eigenvalues(&x).unwrap();
        vals.sort_by(|a, b| a.re.partial_cmp(&b.re).unwrap());
        assert!(vals[0].approx_eq(c64(-1.0, 0.0), 1e-10));
        assert!(vals[1].approx_eq(c64(1.0, 0.0), 1e-10));
    }

    #[test]
    fn schur_reconstructs_input() {
        let mut rng = StdRng::seed_from_u64(31);
        for n in [2, 3, 5, 10, 24] {
            let a = random_matrix(n, n, &mut rng);
            let s = schur(&a).unwrap();
            assert!(s.z.is_unitary(1e-9), "Z not unitary, n = {n}");
            // Check T upper triangular.
            for r in 1..n {
                for c in 0..r {
                    assert_eq!(s.t[(r, c)], C64::ZERO);
                }
            }
            let rec = gemm(&gemm(&s.z, &s.t), &s.z.adjoint());
            assert!(
                rec.max_abs_diff(&a) < 1e-8 * (n as f64) * a.max_abs().max(1.0),
                "reconstruction failed n = {n}: {}",
                rec.max_abs_diff(&a)
            );
        }
    }

    #[test]
    fn eigen_residual_small_for_random_matrices() {
        let mut rng = StdRng::seed_from_u64(32);
        for n in [2, 4, 8, 16, 32] {
            let a = random_matrix(n, n, &mut rng);
            let e = eig(&a).unwrap();
            let res = eig_residual(&a, &e);
            assert!(
                res < 1e-7 * (n as f64),
                "residual {res} too large for n = {n}"
            );
        }
    }

    #[test]
    fn unitary_eigenvalues_on_unit_circle() {
        let mut rng = StdRng::seed_from_u64(33);
        let u = random_unitary(20, &mut rng);
        let vals = eigenvalues(&u).unwrap();
        for v in vals {
            assert!((v.abs() - 1.0).abs() < 1e-8, "|λ| = {} off circle", v.abs());
        }
    }

    #[test]
    fn diagonal_unitary_phases_recovered() {
        let mut rng = StdRng::seed_from_u64(34);
        let u = random_diagonal_unitary(12, &mut rng);
        let truth = sort_by_arg(u.diagonal());
        let vals = sort_by_arg(eigenvalues(&u).unwrap());
        for (a, b) in vals.iter().zip(truth.iter()) {
            assert!(a.approx_eq(*b, 1e-9), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn hermitian_matrix_has_real_eigenvalues() {
        let mut rng = StdRng::seed_from_u64(35);
        let g = random_matrix(14, 14, &mut rng);
        let herm = {
            let adj = g.adjoint();
            (&g + &adj).scale(c64(0.5, 0.0))
        };
        let vals = eigenvalues(&herm).unwrap();
        for v in vals {
            assert!(v.im.abs() < 1e-8, "Im(λ) = {} should vanish", v.im);
        }
    }

    #[test]
    fn repeated_eigenvalues_identity() {
        let i = CMatrix::identity(8);
        let e = eig(&i).unwrap();
        for v in &e.values {
            assert!(v.approx_eq(C64::ONE, 1e-12));
        }
        assert!(eig_residual(&i, &e) < 1e-10);
    }

    #[test]
    fn defective_jordan_block_does_not_crash() {
        // [[1 1],[0 1]] is defective; eigenvalues must still be (1, 1).
        let j = CMatrix::from_real_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        let vals = eigenvalues(&j).unwrap();
        for v in vals {
            assert!(v.approx_eq(C64::ONE, 1e-7), "{v:?}");
        }
    }

    #[test]
    fn eigenvector_phase_eigenproblem_for_qpe() {
        // The exact structure QPE relies on: U = V diag(e^{iθ}) V†, recover θ.
        let mut rng = StdRng::seed_from_u64(36);
        let n = 10;
        let v = random_unitary(n, &mut rng);
        let thetas: Vec<f64> = (0..n)
            .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
            .collect();
        let d = CMatrix::from_diagonal(&thetas.iter().map(|&t| C64::cis(t)).collect::<Vec<_>>());
        let u = gemm(&gemm(&v, &d), &v.adjoint());
        let e = eig(&u).unwrap();
        let res = eig_residual(&u, &e);
        assert!(res < 1e-7, "residual {res}");
        // Every synthetic phase must be found among the computed eigenvalues.
        for &t in &thetas {
            let target = C64::cis(t);
            let found = e.values.iter().any(|l| l.approx_eq(target, 1e-6));
            assert!(found, "phase {t} not recovered");
        }
    }

    #[test]
    fn not_square_is_rejected() {
        assert_eq!(
            schur(&CMatrix::zeros(2, 3)).err(),
            Some(EigError::NotSquare)
        );
        assert!(matches!(
            eig(&CMatrix::zeros(2, 3)),
            Err(EigError::NotSquare)
        ));
    }

    #[test]
    fn empty_matrix_is_fine() {
        let a = CMatrix::zeros(0, 0);
        let s = schur(&a).unwrap();
        assert_eq!(s.t.shape(), (0, 0));
        assert!(eigenvalues(&a).unwrap().is_empty());
    }

    #[test]
    fn one_by_one() {
        let a = CMatrix::from_diagonal(&[c64(2.5, -1.0)]);
        let vals = eigenvalues(&a).unwrap();
        assert!(vals[0].approx_eq(c64(2.5, -1.0), 1e-14));
    }
}

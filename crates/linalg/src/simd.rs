//! Complex SIMD primitives: split-lane `C64x4` math behind a runtime
//! dispatch.
//!
//! Every hot loop in the workspace — the state-vector butterfly, the
//! diagonal/phase sweep, the fused-block gather–matvec–scatter, the FFT
//! butterfly and the dense mat-vec — bottoms out in a handful of
//! *slice-level* complex operations. This module owns those operations
//! and gives each one two implementations:
//!
//! * a **scalar** path, plain safe Rust over `C64`, bit-identical to the
//!   loops the callers used to inline (and the only path on
//!   non-x86-64 targets or when the `simd` cargo feature is off);
//! * an **AVX2+FMA** path (`simd` feature, x86-64 only), using
//!   `core::arch` intrinsics on a split-lane representation: four
//!   complex numbers per register pair, real parts in one `__m256d`,
//!   imaginary parts in the other, so a complex multiply is four fused
//!   multiply-adds with no in-register shuffling.
//!
//! Dispatch is *runtime*: the first call probes
//! `is_x86_feature_detected!("avx2")` + `"fma"` and caches the verdict,
//! so a `--features simd` binary still runs correctly (on the scalar
//! path) on hosts without AVX2. [`force_scalar`] overrides the verdict
//! for tests and the scalar-vs-SIMD benchmark rows.
//!
//! ## Layout
//!
//! `C64` is `repr(C)` — a `&[C64]` *is* a sequence of interleaved
//! `re, im` doubles. The AVX2 path loads four consecutive complex
//! numbers as two 256-bit registers and de-interleaves with
//! `unpacklo/unpackhi` into split lanes (in the self-consistent lane
//! order `[z0, z2, z1, z3]` — permuted, but identically on load and
//! store, so element-wise kernels and reductions never notice).
//!
//! Results can differ from the scalar path by floating-point rounding
//! only (FMA contraction, reassociated reduction order in [`cdot`]);
//! the `simd_equivalence` proptests in `qcemu-sim` pin the agreement to
//! 1e-12 across every kernel.

use crate::complex::C64;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Complex elements processed per vector iteration by the accelerated
/// paths (4 × `f64` re-lanes + 4 × `f64` im-lanes = one AVX2 register
/// pair). Kernels use this to decide when a contiguous run is long
/// enough to vectorise; `LANES.trailing_zeros()` is the `lane_log2`
/// threshold of the contiguous-target butterfly fast path.
pub const LANES: usize = 4;

/// Forces the scalar fallback even on AVX2 hosts (tests, benchmark
/// baselines). Affects all threads; flip back with `force_scalar(false)`.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// 0 = not probed yet, 1 = scalar only, 2 = AVX2+FMA available.
static DETECTED: AtomicU8 = AtomicU8::new(0);

/// `true` when calls will take the AVX2+FMA path: the `simd` feature is
/// compiled in, the host supports it, and [`force_scalar`] is off.
#[inline]
pub fn simd_active() -> bool {
    !FORCE_SCALAR.load(Ordering::Relaxed) && avx2_available()
}

/// One-line description of the active backend (for bench headers).
pub fn backend_name() -> &'static str {
    if simd_active() {
        "avx2+fma (4 lanes)"
    } else if avx2_available() {
        "scalar (avx2 available, forced off)"
    } else {
        "scalar"
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn avx2_available() -> bool {
    match DETECTED.load(Ordering::Relaxed) {
        0 => {
            let ok = std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma");
            DETECTED.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
            ok
        }
        v => v == 2,
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline]
fn avx2_available() -> bool {
    // Keep the probe state machine alive so `backend_name` is honest.
    DETECTED.store(1, Ordering::Relaxed);
    false
}

// ---------------------------------------------------------------------------
// Public slice-level operations (runtime-dispatched).
// ---------------------------------------------------------------------------

/// In-place 2×2 butterfly over two equal-length runs:
/// `(lo[j], hi[j]) ← (m00·lo[j] + m01·hi[j], m10·lo[j] + m11·hi[j])`.
///
/// This is one (controlled) general gate applied to a contiguous pair
/// run — the shape `qcemu-sim`'s butterfly driver hands out when the
/// target qubit sits above the low `log2(LANES)` bits.
///
/// # Panics
///
/// Panics if `lo.len() != hi.len()`.
pub fn butterfly_slices(lo: &mut [C64], hi: &mut [C64], m: &[[C64; 2]; 2]) {
    assert_eq!(lo.len(), hi.len(), "butterfly runs must have equal length");
    // Real-matrix fast path: H, Rx/Ry-style mixers, and every real
    // rotation have a real 2×2, and scaling a complex number by a real
    // commutes with the re/im interleave — so the butterfly becomes four
    // elementwise real multiply-adds over the raw f64 lanes. That halves
    // the flops and (on the vector path) removes every shuffle; the
    // results are bit-identical to the generic complex arithmetic because
    // the dropped products are exact multiplications by zero.
    if m[0][0].im == 0.0 && m[0][1].im == 0.0 && m[1][0].im == 0.0 && m[1][1].im == 0.0 {
        let r = [m[0][0].re, m[0][1].re, m[1][0].re, m[1][1].re];
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if simd_active() {
            // SAFETY: AVX2+FMA presence was verified at runtime.
            unsafe { avx2::butterfly_slices_real(lo, hi, &r) };
            return;
        }
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let x = *a;
            let y = *b;
            *a = x.scale(r[0]) + y.scale(r[1]);
            *b = x.scale(r[2]) + y.scale(r[3]);
        }
        return;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: AVX2+FMA presence was verified at runtime.
        unsafe { avx2::butterfly_slices(lo, hi, m) };
        return;
    }
    butterfly_slices_scalar(lo, hi, m);
}

/// Scalar twin of [`butterfly_slices`] (kept public so equivalence tests
/// can pin the SIMD path against it without toggling globals).
pub fn butterfly_slices_scalar(lo: &mut [C64], hi: &mut [C64], m: &[[C64; 2]; 2]) {
    for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
        let x = *a;
        let y = *b;
        *a = m[0][0] * x + m[0][1] * y;
        *b = m[1][0] * x + m[1][1] * y;
    }
}

/// Per-lane real Givens rotation over two equal-length runs:
/// `(lo[j], hi[j]) ← (c_j·lo[j] − s_j·hi[j], s_j·lo[j] + c_j·hi[j])`,
/// where each **f64 lane** `t` carries its own coefficients `cos[t]`,
/// `sin[t]` (so `cos`/`sin` are `2·len` long, with each complex element's
/// two lanes holding the same value).
///
/// This is the batched controlled-rotation kernel: a batch-major run
/// holds one amplitude pair for every ensemble member, and every member
/// rotates by its *own* angle — a single shared matrix
/// ([`butterfly_slices`]) cannot express that, per-lane coefficients can.
///
/// # Panics
///
/// Panics if the run lengths differ or the coefficient slices are not
/// exactly `2·lo.len()` lanes.
pub fn rotate_lanes(lo: &mut [C64], hi: &mut [C64], cos: &[f64], sin: &[f64]) {
    assert_eq!(lo.len(), hi.len(), "rotation runs must have equal length");
    assert_eq!(cos.len(), 2 * lo.len(), "one cosine per f64 lane");
    assert_eq!(sin.len(), 2 * lo.len(), "one sine per f64 lane");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: AVX2+FMA presence was verified at runtime.
        unsafe { avx2::rotate_lanes(lo, hi, cos, sin) };
        return;
    }
    rotate_lanes_scalar(lo, hi, cos, sin);
}

/// Scalar twin of [`rotate_lanes`] (public for equivalence pinning).
pub fn rotate_lanes_scalar(lo: &mut [C64], hi: &mut [C64], cos: &[f64], sin: &[f64]) {
    for (j, (a, b)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
        let (c, s) = (cos[2 * j], sin[2 * j]);
        let x = *a;
        let y = *b;
        *a = x.scale(c) - y.scale(s);
        *b = x.scale(s) + y.scale(c);
    }
}

/// Multiplies every element of `xs` by the complex factor `f` — the
/// diagonal/phase sweep over a contiguous run.
pub fn scale_slice(xs: &mut [C64], f: C64) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: AVX2+FMA presence was verified at runtime.
        unsafe { avx2::scale_slice(xs, f) };
        return;
    }
    for z in xs.iter_mut() {
        *z *= f;
    }
}

/// Swaps two equal-length runs element-wise — the data movement of a
/// batched X/SWAP kernel, where every basis index owns a contiguous run
/// of `batch` amplitudes. Completes the batched-run primitive set next
/// to [`scale_slice`] (diagonal sweeps) and [`butterfly_slices`] (2×2
/// mixing): all three accept arbitrary run lengths, so batch-axis
/// execution vectorises at any qubit position. Delegates to the standard
/// library's `swap_with_slice`, which lowers to wide vector moves; kept
/// as a named entry point so a specialised path (e.g. non-temporal
/// stores for cache-capacity batches) can slot in without touching the
/// kernel drivers.
pub fn swap_slices(a: &mut [C64], b: &mut [C64]) {
    assert_eq!(a.len(), b.len(), "swap_slices: length mismatch");
    a.swap_with_slice(b);
}

/// Gathers contiguous runs into a dense buffer: run `w` copies the
/// `run` amplitudes at `src[base + offs[w] ..]` into
/// `dst[w·run .. (w+1)·run]`.
///
/// This is the fused-kernel gather with the offset loop lifted from
/// per-element to per-run: when a block's qubit set contains the low
/// `log2(run)` bits, its local index space decomposes into `offs.len()`
/// contiguous runs, and each run moves as one block copy (`memcpy`-class,
/// lowered to wide vector moves) instead of `run` scalar
/// address-computed loads. Like [`swap_slices`], kept as a named entry
/// point so a specialised path (masked loads, non-temporal streaming)
/// can slot in without touching the kernel drivers.
///
/// # Panics
///
/// Panics if any run reaches past `src` or `dst` is shorter than
/// `offs.len()·run`.
pub fn gather_runs(src: &[C64], base: usize, offs: &[usize], run: usize, dst: &mut [C64]) {
    for (w, &off) in offs.iter().enumerate() {
        let s = base + off;
        dst[w * run..(w + 1) * run].copy_from_slice(&src[s..s + run]);
    }
}

/// Scatter inverse of [`gather_runs`]: run `w` copies
/// `src[w·run .. (w+1)·run]` back to `dst[base + offs[w] ..]`.
///
/// # Panics
///
/// Panics if any run reaches past `dst` or `src` is shorter than
/// `offs.len()·run`.
pub fn scatter_runs(src: &[C64], dst: &mut [C64], base: usize, offs: &[usize], run: usize) {
    for (w, &off) in offs.iter().enumerate() {
        let d = base + off;
        dst[d..d + run].copy_from_slice(&src[w * run..(w + 1) * run]);
    }
}

/// Multiplies every element of `xs` by a real factor (FFT normalisation).
pub fn scale_slice_real(xs: &mut [C64], f: f64) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: AVX2+FMA presence was verified at runtime.
        unsafe { avx2::scale_slice_real(xs, f) };
        return;
    }
    for z in xs.iter_mut() {
        *z *= f;
    }
}

/// Unconjugated complex dot product `Σ_j a[j]·b[j]` over the common
/// prefix of the two slices — the row×vector core of the fused dense
/// block product and `CMatrix::matvec`.
///
/// The SIMD path accumulates four partial sums per lane and reduces at
/// the end, so the summation *order* differs from the scalar loop; both
/// are exact for exact inputs and agree to rounding otherwise.
pub fn cdot(a: &[C64], b: &[C64]) -> C64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: AVX2+FMA presence was verified at runtime.
        return unsafe { avx2::cdot(a, b) };
    }
    let mut acc = C64::ZERO;
    for (x, y) in a.iter().zip(b.iter()) {
        acc = x.mul_add(*y, acc);
    }
    acc
}

/// Radix-2 FFT butterfly over two half-block runs with a strided
/// twiddle table: for each `j`,
/// `t = w_j · hi[j]; (lo[j], hi[j]) ← (lo[j] + t, lo[j] − t)` where
/// `w_j = twiddles[start + j·stride]`, conjugated when `conj` is set
/// (the inverse transform).
///
/// # Panics
///
/// Panics if `lo.len() != hi.len()` or the twiddle table is too short.
pub fn fft_butterfly(
    lo: &mut [C64],
    hi: &mut [C64],
    twiddles: &[C64],
    start: usize,
    stride: usize,
    conj: bool,
) {
    assert_eq!(lo.len(), hi.len(), "butterfly runs must have equal length");
    if !lo.is_empty() {
        let last = start + (lo.len() - 1) * stride;
        assert!(last < twiddles.len(), "twiddle table too short");
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: AVX2+FMA presence was verified at runtime; bounds
        // were checked above.
        unsafe { avx2::fft_butterfly(lo, hi, twiddles, start, stride, conj) };
        return;
    }
    for (j, (a, b)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
        let mut w = twiddles[start + j * stride];
        if conj {
            w = w.conj();
        }
        let t = w * *b;
        let u = *a;
        *a = u + t;
        *b = u - t;
    }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA implementations (x86-64, `simd` feature).
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use super::C64;
    use std::arch::x86_64::*;

    /// Four complex numbers in split lanes. Lane order after a
    /// [`load4`] is `[z0, z2, z1, z3]` — permuted, but [`store4`] is
    /// the exact inverse, so element-wise kernels round-trip and
    /// reductions are order-insensitive.
    #[derive(Copy, Clone)]
    struct C64x4 {
        re: __m256d,
        im: __m256d,
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn load4(p: *const C64) -> C64x4 {
        let p = p as *const f64;
        let v0 = _mm256_loadu_pd(p); // r0 i0 r1 i1
        let v1 = _mm256_loadu_pd(p.add(4)); // r2 i2 r3 i3
        C64x4 {
            re: _mm256_unpacklo_pd(v0, v1), // r0 r2 r1 r3
            im: _mm256_unpackhi_pd(v0, v1), // i0 i2 i1 i3
        }
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn store4(p: *mut C64, v: C64x4) {
        let p = p as *mut f64;
        _mm256_storeu_pd(p, _mm256_unpacklo_pd(v.re, v.im));
        _mm256_storeu_pd(p.add(4), _mm256_unpackhi_pd(v.re, v.im));
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn splat(z: C64) -> C64x4 {
        C64x4 {
            re: _mm256_set1_pd(z.re),
            im: _mm256_set1_pd(z.im),
        }
    }

    /// `a·b` with the usual four-FMA split-lane complex product.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn mul(a: C64x4, b: C64x4) -> C64x4 {
        C64x4 {
            re: _mm256_fmsub_pd(a.re, b.re, _mm256_mul_pd(a.im, b.im)),
            im: _mm256_fmadd_pd(a.re, b.im, _mm256_mul_pd(a.im, b.re)),
        }
    }

    /// `a·b + c` (fused; the accumulator form used by [`cdot`]).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn mul_acc(a: C64x4, b: C64x4, c: C64x4) -> C64x4 {
        C64x4 {
            re: _mm256_fnmadd_pd(a.im, b.im, _mm256_fmadd_pd(a.re, b.re, c.re)),
            im: _mm256_fmadd_pd(a.im, b.re, _mm256_fmadd_pd(a.re, b.im, c.im)),
        }
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn add(a: C64x4, b: C64x4) -> C64x4 {
        C64x4 {
            re: _mm256_add_pd(a.re, b.re),
            im: _mm256_add_pd(a.im, b.im),
        }
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn sub(a: C64x4, b: C64x4) -> C64x4 {
        C64x4 {
            re: _mm256_sub_pd(a.re, b.re),
            im: _mm256_sub_pd(a.im, b.im),
        }
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum(v: C64x4) -> C64 {
        let mut re = [0.0f64; 4];
        let mut im = [0.0f64; 4];
        _mm256_storeu_pd(re.as_mut_ptr(), v.re);
        _mm256_storeu_pd(im.as_mut_ptr(), v.im);
        C64 {
            re: (re[0] + re[1]) + (re[2] + re[3]),
            im: (im[0] + im[1]) + (im[2] + im[3]),
        }
    }

    /// Real-matrix butterfly over the raw f64 lanes — no re/im
    /// deinterleave needed because real scaling acts on both components
    /// identically. `r = [m00, m01, m10, m11]`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn butterfly_slices_real(lo: &mut [C64], hi: &mut [C64], r: &[f64; 4]) {
        let n = lo.len() * 2; // f64 lanes
        let (m00, m01, m10, m11) = (
            _mm256_set1_pd(r[0]),
            _mm256_set1_pd(r[1]),
            _mm256_set1_pd(r[2]),
            _mm256_set1_pd(r[3]),
        );
        let lp = lo.as_mut_ptr() as *mut f64;
        let hp = hi.as_mut_ptr() as *mut f64;
        let mut j = 0;
        while j + 4 <= n {
            let x = _mm256_loadu_pd(lp.add(j));
            let y = _mm256_loadu_pd(hp.add(j));
            _mm256_storeu_pd(lp.add(j), _mm256_fmadd_pd(m01, y, _mm256_mul_pd(m00, x)));
            _mm256_storeu_pd(hp.add(j), _mm256_fmadd_pd(m11, y, _mm256_mul_pd(m10, x)));
            j += 4;
        }
        while j < n {
            let x = *lp.add(j);
            let y = *hp.add(j);
            *lp.add(j) = r[1].mul_add(y, r[0] * x);
            *hp.add(j) = r[3].mul_add(y, r[2] * x);
            j += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn butterfly_slices(lo: &mut [C64], hi: &mut [C64], m: &[[C64; 2]; 2]) {
        let n = lo.len();
        let (m00, m01, m10, m11) = (
            splat(m[0][0]),
            splat(m[0][1]),
            splat(m[1][0]),
            splat(m[1][1]),
        );
        let lp = lo.as_mut_ptr();
        let hp = hi.as_mut_ptr();
        let mut j = 0;
        while j + 4 <= n {
            let x = load4(lp.add(j));
            let y = load4(hp.add(j));
            store4(lp.add(j), mul_acc(m01, y, mul(m00, x)));
            store4(hp.add(j), mul_acc(m11, y, mul(m10, x)));
            j += 4;
        }
        super::butterfly_slices_scalar(&mut lo[j..], &mut hi[j..], m);
    }

    /// Per-lane Givens rotation on raw f64 lanes (see
    /// [`super::rotate_lanes`]) — straight elementwise FMA, no shuffles.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn rotate_lanes(lo: &mut [C64], hi: &mut [C64], cos: &[f64], sin: &[f64]) {
        let n = lo.len() * 2; // f64 lanes
        let lp = lo.as_mut_ptr() as *mut f64;
        let hp = hi.as_mut_ptr() as *mut f64;
        let cp = cos.as_ptr();
        let sp = sin.as_ptr();
        let mut j = 0;
        while j + 4 <= n {
            let x = _mm256_loadu_pd(lp.add(j));
            let y = _mm256_loadu_pd(hp.add(j));
            let c = _mm256_loadu_pd(cp.add(j));
            let s = _mm256_loadu_pd(sp.add(j));
            _mm256_storeu_pd(lp.add(j), _mm256_fmsub_pd(c, x, _mm256_mul_pd(s, y)));
            _mm256_storeu_pd(hp.add(j), _mm256_fmadd_pd(c, y, _mm256_mul_pd(s, x)));
            j += 4;
        }
        while j < n {
            let (c, s) = (*cp.add(j), *sp.add(j));
            let x = *lp.add(j);
            let y = *hp.add(j);
            *lp.add(j) = c * x - s * y;
            *hp.add(j) = s * x + c * y;
            j += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn scale_slice(xs: &mut [C64], f: C64) {
        let n = xs.len();
        let fv = splat(f);
        let p = xs.as_mut_ptr();
        let mut j = 0;
        while j + 4 <= n {
            store4(p.add(j), mul(load4(p.add(j)), fv));
            j += 4;
        }
        for z in &mut xs[j..] {
            *z *= f;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn scale_slice_real(xs: &mut [C64], f: f64) {
        let n = xs.len() * 2; // doubles
        let fv = _mm256_set1_pd(f);
        let p = xs.as_mut_ptr() as *mut f64;
        let mut j = 0;
        while j + 4 <= n {
            _mm256_storeu_pd(p.add(j), _mm256_mul_pd(_mm256_loadu_pd(p.add(j)), fv));
            j += 4;
        }
        while j < n {
            *p.add(j) *= f;
            j += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn cdot(a: &[C64], b: &[C64]) -> C64 {
        let n = a.len().min(b.len());
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = C64x4 {
            re: _mm256_setzero_pd(),
            im: _mm256_setzero_pd(),
        };
        let mut j = 0;
        while j + 4 <= n {
            acc = mul_acc(load4(ap.add(j)), load4(bp.add(j)), acc);
            j += 4;
        }
        let mut tail = hsum(acc);
        while j < n {
            tail = (*ap.add(j)).mul_add(*bp.add(j), tail);
            j += 1;
        }
        tail
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn fft_butterfly(
        lo: &mut [C64],
        hi: &mut [C64],
        twiddles: &[C64],
        start: usize,
        stride: usize,
        conj: bool,
    ) {
        let n = lo.len();
        let lp = lo.as_mut_ptr();
        let hp = hi.as_mut_ptr();
        let tp = twiddles.as_ptr();
        let neg = if conj { -1.0 } else { 1.0 };
        let mut j = 0;
        while j + 4 <= n {
            // Twiddles are strided; gather them scalar (four loads) into
            // split lanes in the same permuted order as load4.
            let k = start + j * stride;
            let (w0, w1, w2, w3) = (
                *tp.add(k),
                *tp.add(k + stride),
                *tp.add(k + 2 * stride),
                *tp.add(k + 3 * stride),
            );
            let w = C64x4 {
                re: _mm256_setr_pd(w0.re, w2.re, w1.re, w3.re),
                im: _mm256_mul_pd(
                    _mm256_setr_pd(w0.im, w2.im, w1.im, w3.im),
                    _mm256_set1_pd(neg),
                ),
            };
            let u = load4(lp.add(j));
            let t = mul(w, load4(hp.add(j)));
            store4(lp.add(j), add(u, t));
            store4(hp.add(j), sub(u, t));
            j += 4;
        }
        while j < n {
            let mut w = *tp.add(start + j * stride);
            if conj {
                w = w.conj();
            }
            let t = w * *hp.add(j);
            let u = *lp.add(j);
            *lp.add(j) = u + t;
            *hp.add(j) = u - t;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::random::random_state;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-12;

    /// Serialises every test that flips the process-global
    /// [`force_scalar`] flag — the default parallel test runner would
    /// otherwise let one test's toggle void another's scalar leg.
    static SCALAR_TOGGLE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn close(a: &[C64], b: &[C64]) -> bool {
        a.iter().zip(b).all(|(x, y)| x.approx_eq(*y, TOL))
    }

    /// Runs `f` twice — once forced scalar, once with whatever the host
    /// offers — and hands both results to `check`.
    fn both_paths<T>(f: impl Fn() -> T, check: impl Fn(T, T)) {
        let _guard = SCALAR_TOGGLE.lock().unwrap();
        force_scalar(true);
        let scalar = f();
        force_scalar(false);
        let native = f();
        check(scalar, native);
    }

    #[test]
    fn butterfly_matches_scalar_on_all_lengths() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = [
            [c64(0.6, 0.1), c64(-0.3, 0.7)],
            [c64(0.3, 0.7), c64(0.6, -0.1)],
        ];
        for len in [0usize, 1, 3, 4, 5, 8, 13, 64] {
            let lo0 = random_state(len.next_power_of_two().max(1), &mut rng)[..len].to_vec();
            let hi0 = random_state(len.next_power_of_two().max(1), &mut rng)[..len].to_vec();
            both_paths(
                || {
                    let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
                    butterfly_slices(&mut lo, &mut hi, &m);
                    (lo, hi)
                },
                |(slo, shi), (nlo, nhi)| {
                    assert!(close(&slo, &nlo) && close(&shi, &nhi), "len = {len}");
                },
            );
        }
    }

    #[test]
    fn scale_and_real_scale_match_scalar() {
        let mut rng = StdRng::seed_from_u64(12);
        let xs0 = random_state(16, &mut rng)[..13].to_vec();
        both_paths(
            || {
                let mut xs = xs0.clone();
                scale_slice(&mut xs, c64(0.3, -0.8));
                scale_slice_real(&mut xs, 1.7);
                xs
            },
            |s, n| assert!(close(&s, &n)),
        );
    }

    #[test]
    fn real_butterfly_matches_generic_complex_arithmetic() {
        // A real 2×2 takes the lane fast path; it must agree with the
        // generic complex path (same matrix, tiny imaginary part forced).
        let mut rng = StdRng::seed_from_u64(15);
        let (c, s) = (0.36_f64.cos(), 0.36_f64.sin());
        let real = [[c64(c, 0.0), c64(-s, 0.0)], [c64(s, 0.0), c64(c, 0.0)]];
        for len in [0usize, 1, 3, 4, 5, 8, 13, 64] {
            let lo0 = random_state(len.next_power_of_two().max(1), &mut rng)[..len].to_vec();
            let hi0 = random_state(len.next_power_of_two().max(1), &mut rng)[..len].to_vec();
            let (mut rlo, mut rhi) = (lo0.clone(), hi0.clone());
            butterfly_slices(&mut rlo, &mut rhi, &real);
            let (mut glo, mut ghi) = (lo0.clone(), hi0.clone());
            butterfly_slices_scalar(&mut glo, &mut ghi, &real);
            assert!(close(&rlo, &glo) && close(&rhi, &ghi), "len = {len}");
            both_paths(
                || {
                    let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
                    butterfly_slices(&mut lo, &mut hi, &real);
                    (lo, hi)
                },
                |(slo, shi), (nlo, nhi)| {
                    assert!(close(&slo, &nlo) && close(&shi, &nhi), "len = {len}");
                },
            );
        }
    }

    #[test]
    fn rotate_lanes_matches_per_lane_scalar_rotations() {
        let mut rng = StdRng::seed_from_u64(16);
        for len in [0usize, 1, 3, 4, 5, 8, 17] {
            let lo0 = random_state(32, &mut rng)[..len].to_vec();
            let hi0 = random_state(32, &mut rng)[..len].to_vec();
            // Distinct angle per complex element, duplicated per f64 lane.
            let mut cos = vec![0.0; 2 * len];
            let mut sin = vec![0.0; 2 * len];
            for j in 0..len {
                let (s, c) = (0.21 + 0.4 * j as f64).sin_cos();
                cos[2 * j] = c;
                cos[2 * j + 1] = c;
                sin[2 * j] = s;
                sin[2 * j + 1] = s;
            }
            both_paths(
                || {
                    let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
                    rotate_lanes(&mut lo, &mut hi, &cos, &sin);
                    (lo, hi)
                },
                |(slo, shi), (nlo, nhi)| {
                    assert!(close(&slo, &nlo) && close(&shi, &nhi), "len = {len}");
                },
            );
            // Pin against the obvious per-element definition.
            let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
            rotate_lanes_scalar(&mut lo, &mut hi, &cos, &sin);
            for j in 0..len {
                let (c, s) = (cos[2 * j], sin[2 * j]);
                let want_lo = lo0[j].scale(c) - hi0[j].scale(s);
                let want_hi = lo0[j].scale(s) + hi0[j].scale(c);
                assert!(lo[j].approx_eq(want_lo, TOL) && hi[j].approx_eq(want_hi, TOL));
            }
        }
    }

    #[test]
    fn swap_slices_exchanges_runs_at_any_length() {
        let mut rng = StdRng::seed_from_u64(14);
        for len in [0usize, 1, 3, 4, 5, 17] {
            let a0 = random_state(32, &mut rng)[..len].to_vec();
            let b0 = random_state(32, &mut rng)[..len].to_vec();
            let (mut a, mut b) = (a0.clone(), b0.clone());
            swap_slices(&mut a, &mut b);
            assert!(close(&a, &b0) && close(&b, &a0), "len = {len}");
        }
    }

    #[test]
    fn gather_scatter_runs_round_trip() {
        let mut rng = StdRng::seed_from_u64(17);
        for (run, offs) in [
            (1usize, vec![0usize, 2, 8, 10]),
            (2, vec![0, 4, 8, 12]),
            (4, vec![0, 8, 16, 24]),
        ] {
            let src = random_state(32, &mut rng);
            let mut dense = vec![C64::ZERO; offs.len() * run];
            gather_runs(&src, 0, &offs, run, &mut dense);
            for (w, &off) in offs.iter().enumerate() {
                for j in 0..run {
                    assert_eq!(dense[w * run + j], src[off + j], "run {w} lane {j}");
                }
            }
            let mut dst = vec![C64::ZERO; 32];
            scatter_runs(&dense, &mut dst, 0, &offs, run);
            for (w, &off) in offs.iter().enumerate() {
                for j in 0..run {
                    assert_eq!(dst[off + j], src[off + j], "run {w} lane {j}");
                }
            }
            // A non-zero base shifts every run.
            let mut based = vec![C64::ZERO; offs.len() * run];
            gather_runs(&src, 1, &offs[..2], run, &mut based[..2 * run]);
            assert_eq!(based[0], src[offs[0] + 1]);
        }
    }

    #[test]
    fn cdot_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(13);
        for len in [0usize, 1, 4, 7, 32, 63] {
            let a = random_state(64, &mut rng)[..len].to_vec();
            let b = random_state(64, &mut rng)[..len].to_vec();
            both_paths(
                || cdot(&a, &b),
                |s, n| assert!(s.approx_eq(n, TOL), "len = {len}: {s:?} vs {n:?}"),
            );
        }
    }

    #[test]
    fn fft_butterfly_matches_scalar_both_directions() {
        let mut rng = StdRng::seed_from_u64(14);
        let twiddles: Vec<C64> = (0..64).map(|k| C64::cis(-0.098 * k as f64)).collect();
        for (len, stride) in [(4usize, 1usize), (7, 2), (16, 3), (5, 4)] {
            let lo0 = random_state(32, &mut rng)[..len].to_vec();
            let hi0 = random_state(32, &mut rng)[..len].to_vec();
            for conj in [false, true] {
                both_paths(
                    || {
                        let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
                        fft_butterfly(&mut lo, &mut hi, &twiddles, 1, stride, conj);
                        (lo, hi)
                    },
                    |(slo, shi), (nlo, nhi)| {
                        assert!(close(&slo, &nlo) && close(&shi, &nhi));
                    },
                );
            }
        }
    }

    #[test]
    fn backend_name_reports_a_known_state() {
        let _guard = SCALAR_TOGGLE.lock().unwrap();
        force_scalar(false);
        let name = backend_name();
        assert!(
            name.starts_with("avx2") || name.starts_with("scalar"),
            "{name}"
        );
        force_scalar(true);
        assert!(backend_name().starts_with("scalar"));
        force_scalar(false);
    }

    #[test]
    fn lanes_constant_is_a_power_of_two() {
        assert!(LANES.is_power_of_two());
    }
}

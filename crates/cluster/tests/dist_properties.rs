//! Property tests: distributed execution must match single-node
//! `StateVector::run` amplitude-for-amplitude, across every execution
//! mode — per-gate exchange under both [`CommPolicy`] variants, the
//! communication-avoiding remap path, and remap + fusion — at P ∈
//! {1, 2, 4, 8}.

use proptest::prelude::*;
use qcemu_cluster::{run, CommPolicy, DistributedState, MachineModel};
use qcemu_linalg::random_state;
use qcemu_sim::{Circuit, FusionPolicy, Gate, SimConfig, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 6;

/// Strategy: a random circuit on `n` qubits from the full gate zoo —
/// diagonal, permutation, general, controlled, and SWAP gates, so every
/// distributed code path (diagonal shortcut, slice swap, subset-send
/// exchange, remap, fused blocks) gets exercised.
fn random_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate =
        (0..8usize, 0..n, 0..n, 0..n, -3.0f64..3.0).prop_map(move |(kind, q1, q2, q3, theta)| {
            let distinct2 = |a: usize, b: usize| if a == b { (a, (b + 1) % n) } else { (a, b) };
            let (a, b) = distinct2(q1, q2);
            match kind {
                0 => Gate::h(a),
                1 => Gate::x(a),
                2 => Gate::rz(a, theta),
                3 => Gate::phase(a, theta),
                4 => Gate::cnot(a, b),
                5 => Gate::cphase(a, b, theta),
                6 => Gate::swap(a, b),
                _ => {
                    let c = if q3 == a || q3 == b { (b + 1) % n } else { q3 };
                    if c != a && c != b {
                        Gate::toffoli(a, c, b)
                    } else {
                        Gate::ry(a, theta)
                    }
                }
            }
        });
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

/// Single-node reference through the same entry point the ISSUE names.
fn reference(circuit: &Circuit, input: &StateVector) -> StateVector {
    let mut sv = input.clone();
    sv.run(circuit, &SimConfig::unfused());
    sv
}

fn check_mode<F>(circuit: &Circuit, input: &StateVector, p: usize, label: &str, exec: F)
where
    F: Fn(&mut DistributedState, &mut qcemu_cluster::Comm) + Sync,
{
    let expect = reference(circuit, input);
    let results = run(p, MachineModel::stampede(), |comm| {
        let mut ds = DistributedState::from_full(input, comm);
        exec(&mut ds, comm);
        ds.gather(comm)
    });
    let gathered = results[0].0.as_ref().expect("rank 0 gathers");
    let diff = gathered.max_diff_up_to_phase(&expect);
    assert!(
        diff < 1e-12,
        "{label} (P = {p}) diverged from single-node run: {diff}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn per_gate_execution_matches_single_node(circuit in random_circuit(N, 25), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = StateVector::from_amplitudes(random_state(1 << N, &mut rng));
        for p in [1usize, 2, 4, 8] {
            for policy in [CommPolicy::Specialized, CommPolicy::Generic] {
                check_mode(&circuit, &input, p, "per-gate", |ds, comm| {
                    ds.apply_circuit(&circuit, comm, policy);
                });
            }
        }
    }

    #[test]
    fn remap_execution_matches_single_node(circuit in random_circuit(N, 25), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = StateVector::from_amplitudes(random_state(1 << N, &mut rng));
        for p in [1usize, 2, 4, 8] {
            check_mode(&circuit, &input, p, "remap", |ds, comm| {
                ds.run_circuit(&circuit, &FusionPolicy::Disabled, comm);
            });
        }
    }

    #[test]
    fn remap_with_fusion_matches_single_node(circuit in random_circuit(N, 25), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = StateVector::from_amplitudes(random_state(1 << N, &mut rng));
        for p in [1usize, 2, 4, 8] {
            for k in [2usize, 4] {
                check_mode(&circuit, &input, p, "remap+fusion", |ds, comm| {
                    ds.run_circuit(
                        &circuit,
                        &FusionPolicy::Greedy { max_fused_qubits: k },
                        comm,
                    );
                });
            }
        }
    }
}

//! # qcemu-cluster
//!
//! The distributed substrate standing in for Stampede + MPI in *High
//! Performance Emulation of Quantum Circuits* (SC 2016):
//!
//! * [`comm`] — a virtual cluster: rank threads, point-to-point messages,
//!   all-to-all and barrier, with an α–β simulated clock so every executed
//!   run also reports the time its traffic would cost on a modelled
//!   interconnect;
//! * [`dist_state`] — state vectors sliced over ranks by the top qubits,
//!   with the paper's communication-avoidance for diagonal gates
//!   ([`dist_state::CommPolicy::Specialized`]), a qHiPSTER-like generic
//!   mode for the Fig. 4 comparison, and the communication-avoiding
//!   planned path ([`dist_state::DistributedState::run`]) that executes
//!   fused circuits with qubit remapping;
//! * [`plan`] — the global↔local qubit-remapping planner ([`plan::DistPlan`])
//!   and the [`plan::QubitMap`] tracking where each logical qubit lives;
//! * [`dist_fft`] — the distributed four-step FFT with exactly three
//!   all-to-all transposes (Eq. 5's communication term);
//! * [`model`] — Eq. (5) and Eq. (6) implemented verbatim over a
//!   [`model::MachineModel`] (Stampede preset + local calibration), used to
//!   produce the paper-scale 28–36-qubit series that exceed this machine's
//!   memory;
//! * [`drivers`] — executed-mode weak-scaling drivers for Figs. 3 and 4.

pub mod comm;
pub mod dist_fft;
pub mod dist_state;
pub mod drivers;
pub mod model;
pub mod plan;

pub use comm::{run, Comm, RankStats};
pub use dist_fft::{distributed_fft, distributed_transpose, FFT_ALL_TO_ALL_PHASES};
pub use dist_state::{CommPolicy, DistributedState};
pub use drivers::{run_qft_emulation, run_qft_remap, run_qft_simulation, DistRunReport};
pub use model::{exchange_bytes_per_rank, remap_bytes_per_rank, MachineModel, BYTES_PER_AMP};
pub use plan::{DistPlan, PlanStep, QubitMap};

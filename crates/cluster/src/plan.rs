//! Communication-avoiding execution planning: global↔local qubit remapping.
//!
//! The paper's distributed simulator (§4.5) already avoids communication
//! for *diagonal* gates on global qubits; every **non-diagonal** gate on a
//! global qubit still costs a full pairwise slice exchange (Eq. 6's
//! `log₂P` term counts exactly those). HPQEA-style scalable emulators
//! (arXiv:2510.07110) close that gap with *qubit remapping*: relabel the
//! qubits about to be used non-diagonally into node-local slots with one
//! batched all-to-all permutation, then execute the whole upcoming run of
//! gates with **zero** communication.
//!
//! This module is the planning half. A [`QubitMap`] tracks where each
//! *logical* (program) qubit currently lives among the *physical* slots —
//! slots `0..n_local` are intra-rank, the top `log₂P` slots select the
//! rank. [`DistPlan::new`] walks a [`FusedCircuit`] once and interleaves
//! [`PlanStep::Remap`] instructions (which slot pairs to swap) with the
//! ops, so that by the time a non-diagonal gate or fused block executes,
//! all of its qubits sit in local slots. Victim slots are chosen
//! Bélády-style: evict the local qubit whose next *locality-requiring*
//! use is furthest away (diagonal uses don't count — a diagonal gate on a
//! global qubit is free).
//!
//! One remap of `k` slot pairs moves `(1 − 2⁻ᵏ)` of each rank's slice —
//! *less* than one full-slice exchange — and pays for an arbitrarily long
//! run of subsequent gates, which is why remap + fusion sends strictly
//! fewer bytes than per-gate exchange on the Fig. 4 QFT workload (see the
//! `fig4_remap_ablation` bench and `docs/PERFORMANCE.md`).

use qcemu_sim::{FusedCircuit, FusedOp, FusedStructure, Gate};

/// How far ahead the planner scans when batching future remap wants into
/// the current permutation. Capacity (free local slots) usually saturates
/// long before this; the cap just bounds planning to O(ops · horizon).
const LOOKAHEAD_HORIZON: usize = 256;

/// A bijection between logical (program) qubits and physical slots.
///
/// Slot `s < n_local` is node-local; slot `s ≥ n_local` is global (bit
/// `s − n_local` of the rank id). The distributed state starts with the
/// identity map and permutes it as remaps execute; every rank holds the
/// same map (remaps are collective).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QubitMap {
    /// `slot_of[q]` = physical slot of logical qubit `q`.
    slot_of: Vec<usize>,
    /// `qubit_at[s]` = logical qubit living in physical slot `s`.
    qubit_at: Vec<usize>,
}

impl QubitMap {
    /// The identity map on `n` qubits.
    pub fn identity(n: usize) -> QubitMap {
        QubitMap {
            slot_of: (0..n).collect(),
            qubit_at: (0..n).collect(),
        }
    }

    /// Number of qubits.
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// `true` iff the map is empty (zero qubits).
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// Physical slot of logical qubit `q`.
    #[inline]
    pub fn slot(&self, q: usize) -> usize {
        self.slot_of[q]
    }

    /// Logical qubit living in physical slot `s`.
    #[inline]
    pub fn qubit_at(&self, s: usize) -> usize {
        self.qubit_at[s]
    }

    /// `true` iff every logical qubit sits in its own slot.
    pub fn is_identity(&self) -> bool {
        self.slot_of.iter().enumerate().all(|(q, &s)| q == s)
    }

    /// Swaps the logical qubits living in slots `a` and `b`.
    pub fn swap_slots(&mut self, a: usize, b: usize) {
        let (qa, qb) = (self.qubit_at[a], self.qubit_at[b]);
        self.qubit_at.swap(a, b);
        self.slot_of[qa] = b;
        self.slot_of[qb] = a;
    }

    /// Translates a physical basis index to the logical basis index it
    /// stores the amplitude of: bit `q` of the result is bit `slot_of[q]`
    /// of `phys`. Used by `gather` to undo the remap permutation.
    pub fn logical_index(&self, phys: usize) -> usize {
        self.slot_of
            .iter()
            .enumerate()
            .fold(0usize, |acc, (q, &s)| acc | (((phys >> s) & 1) << q))
    }

    /// Inverse of [`QubitMap::logical_index`]: where the amplitude of
    /// logical basis state `logical` physically lives.
    pub fn physical_index(&self, logical: usize) -> usize {
        self.slot_of
            .iter()
            .enumerate()
            .fold(0usize, |acc, (q, &s)| acc | (((logical >> q) & 1) << s))
    }
}

/// One step of a planned distributed execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanStep {
    /// Swap each `(local_slot, global_slot)` pair — executed as one
    /// batched all-to-all permutation ([`crate::Comm::exchange_all`]).
    Remap(Vec<(usize, usize)>),
    /// Execute op `ops()[i]` of the planned [`FusedCircuit`].
    Op(usize),
}

/// A communication-avoiding schedule for one [`FusedCircuit`] on a given
/// slice geometry. Produced once (deterministically — every rank computes
/// the identical plan) and executed by
/// [`DistributedState::run`](crate::DistributedState::run).
#[derive(Clone, Debug)]
pub struct DistPlan {
    n_qubits: usize,
    n_local: usize,
    n_ops: usize,
    steps: Vec<PlanStep>,
    initial_map: QubitMap,
    final_map: QubitMap,
}

/// The logical qubits `op` must have in local slots to execute without
/// communication, given the current `map`. Diagonal action — single
/// diagonal gates, fused diagonal blocks, and *controls* of any gate — is
/// free on global qubits and contributes nothing.
fn locality_wants(op: &FusedOp, map: &QubitMap, n_local: usize) -> Vec<usize> {
    locality_relevant(op)
        .into_iter()
        .filter(|&q| map.slot(q) >= n_local)
        .collect()
}

/// The logical qubits whose placement matters for `op` regardless of the
/// current map: the set `locality_wants` filters by slot, and the set the
/// Bélády eviction treats as a "use".
fn locality_relevant(op: &FusedOp) -> Vec<usize> {
    match op {
        FusedOp::Gate(g) => match g {
            Gate::Unary { op, target, .. } => {
                if op.is_diagonal() {
                    Vec::new()
                } else {
                    vec![*target]
                }
            }
            // An *uncontrolled* SWAP is a pure qubit relabel: the planned
            // executor absorbs it into the map for free, wherever the two
            // qubits live (see `relabel_swap`). Controlled SWAPs change
            // amplitudes conditionally and need their qubits local.
            Gate::Swap { a, b, controls } => {
                if controls.is_empty() {
                    Vec::new()
                } else {
                    vec![*a, *b]
                }
            }
        },
        FusedOp::Block(b) => {
            if b.structure() == FusedStructure::Diagonal {
                Vec::new()
            } else {
                b.qubits().to_vec()
            }
        }
    }
}

/// If `op` is an uncontrolled SWAP, the logical qubit pair it relabels.
/// Both the planner and the executor apply this as a free
/// [`QubitMap::swap_slots`] update — zero bytes, zero sweeps — which is
/// why the QFT's final SWAP network costs nothing on the planned path.
pub(crate) fn relabel_swap(op: &FusedOp) -> Option<(usize, usize)> {
    match op {
        FusedOp::Gate(Gate::Swap { a, b, controls }) if controls.is_empty() => Some((*a, *b)),
        _ => None,
    }
}

/// All logical qubits `op` touches (controls included) — these may not be
/// evicted by a remap scheduled immediately before `op`.
fn op_qubits(op: &FusedOp) -> Vec<usize> {
    match op {
        FusedOp::Gate(g) => g.qubits(),
        FusedOp::Block(b) => b.qubits().to_vec(),
    }
}

impl DistPlan {
    /// Plans `fused` for slices of `n_local` local qubits out of
    /// `n_qubits` total, starting from the identity map. With
    /// `n_local == n_qubits` (P = 1) the plan is a straight pass-through
    /// with zero remaps.
    pub fn new(fused: &FusedCircuit, n_qubits: usize, n_local: usize) -> DistPlan {
        DistPlan::from_map(fused, n_qubits, n_local, QubitMap::identity(n_qubits))
    }

    /// Plans `fused` starting from an arbitrary qubit map — required when
    /// the executing [`DistributedState`](crate::DistributedState) has
    /// already been remapped by a previous run: planning from the
    /// identity would mistake evicted qubits for local ones.
    pub fn from_map(
        fused: &FusedCircuit,
        n_qubits: usize,
        n_local: usize,
        start: QubitMap,
    ) -> DistPlan {
        assert!(n_local <= n_qubits);
        assert_eq!(start.len(), n_qubits, "map size must match qubit count");
        let ops = fused.ops();

        // Occurrence lists: for each logical qubit, the (ascending) op
        // indices where locality matters — the planner's reuse-distance
        // oracle for both lookahead batching and victim selection.
        let mut uses: Vec<Vec<usize>> = vec![Vec::new(); n_qubits];
        for (i, op) in ops.iter().enumerate() {
            for q in locality_relevant(op) {
                uses[q].push(i);
            }
        }
        // `cursor[q]` indexes the first entry of `uses[q]` not yet passed.
        let mut cursor: Vec<usize> = vec![0; n_qubits];
        let next_use = |q: usize, cursor: &[usize], from: usize| -> usize {
            uses[q][cursor[q]..]
                .iter()
                .copied()
                .find(|&i| i >= from)
                .unwrap_or(usize::MAX)
        };

        let initial_map = start.clone();
        let mut map = start;
        let mut steps = Vec::with_capacity(ops.len());

        for (i, op) in ops.iter().enumerate() {
            // Advance the reuse cursors past op i − 1.
            for q in op_qubits(op) {
                while cursor[q] < uses[q].len() && uses[q][cursor[q]] < i {
                    cursor[q] += 1;
                }
            }

            // Uncontrolled SWAPs relabel the map for free — mirror what
            // the executor will do and move on.
            if let Some((a, b)) = relabel_swap(op) {
                map.swap_slots(map.slot(a), map.slot(b));
                steps.push(PlanStep::Op(i));
                continue;
            }

            let need = locality_wants(op, &map, n_local);
            if !need.is_empty() {
                // Pinned: every qubit of this op — the ones already local
                // must stay local, the ones being brought in are in
                // `wanted` anyway.
                let pinned: Vec<usize> = op_qubits(op);
                let is_pinned = |q: usize| pinned.contains(&q);

                // Candidate victims: local slots whose tenant is not
                // pinned, furthest next locality-relevant use first.
                let mut victims: Vec<(usize, usize)> = (0..n_local)
                    .filter(|&s| !is_pinned(map.qubit_at(s)))
                    .map(|s| (next_use(map.qubit_at(s), &cursor, i + 1), s))
                    .collect();
                victims.sort_by(|a, b| b.cmp(a)); // furthest use first

                // Batch: the op's own needs, then lookahead wants, capped
                // by victim capacity.
                let mut wanted = need;
                'scan: for future in ops.iter().skip(i + 1).take(LOOKAHEAD_HORIZON) {
                    if wanted.len() >= victims.len() {
                        break 'scan;
                    }
                    for q in locality_wants(future, &map, n_local) {
                        if !wanted.contains(&q) {
                            wanted.push(q);
                            if wanted.len() >= victims.len() {
                                break 'scan;
                            }
                        }
                    }
                }
                wanted.truncate(victims.len());

                // A lookahead want must never evict a slot the batch
                // itself needs — victims exclude pinned qubits, and
                // `wanted` qubits are global, so no conflict is possible.
                let pairs: Vec<(usize, usize)> = wanted
                    .iter()
                    .zip(victims.iter())
                    .map(|(&q, &(_, slot))| (slot, map.slot(q)))
                    .collect();
                if !pairs.is_empty() {
                    for &(l, g) in &pairs {
                        map.swap_slots(l, g);
                    }
                    steps.push(PlanStep::Remap(pairs));
                }
                // If capacity ran out (tiny n_local), the op simply stays
                // (partially) global: the executor's exchange fallback
                // handles single gates, and blocks are rejected there
                // with a clear message.
            }
            steps.push(PlanStep::Op(i));
        }

        DistPlan {
            n_qubits,
            n_local,
            n_ops: ops.len(),
            steps,
            initial_map,
            final_map: map,
        }
    }

    /// The qubit map this plan assumes at step 0 (checked at execution).
    pub fn initial_map(&self) -> &QubitMap {
        &self.initial_map
    }

    /// The planned steps in execution order.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Number of ops in the circuit this plan was built for (sanity-checked
    /// at execution time).
    pub fn op_count(&self) -> usize {
        self.n_ops
    }

    /// Total qubits / local qubits of the slice geometry planned for.
    pub fn geometry(&self) -> (usize, usize) {
        (self.n_qubits, self.n_local)
    }

    /// Number of remap steps scheduled.
    pub fn remap_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, PlanStep::Remap(_)))
            .count()
    }

    /// Total slot pairs swapped across all remaps.
    pub fn remapped_pairs(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                PlanStep::Remap(pairs) => pairs.len(),
                PlanStep::Op(_) => 0,
            })
            .sum()
    }

    /// The qubit map after the full plan has executed (what `gather` must
    /// undo).
    pub fn final_map(&self) -> &QubitMap {
        &self.final_map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcemu_sim::circuits::qft_circuit;
    use qcemu_sim::{Circuit, FusionPolicy};

    #[test]
    fn qubit_map_swap_and_index_translation() {
        let mut m = QubitMap::identity(4);
        assert!(m.is_identity());
        m.swap_slots(1, 3);
        assert_eq!(m.slot(1), 3);
        assert_eq!(m.slot(3), 1);
        assert_eq!(m.qubit_at(3), 1);
        assert!(!m.is_identity());
        // Logical bit 1 now lives in slot 3 (and bit 3 in slot 1).
        assert_eq!(m.physical_index(0b0010), 0b1000);
        assert_eq!(m.physical_index(0b1000), 0b0010);
        for x in 0..16 {
            assert_eq!(m.logical_index(m.physical_index(x)), x);
        }
        m.swap_slots(1, 3);
        assert!(m.is_identity());
    }

    #[test]
    fn all_local_circuits_plan_zero_remaps() {
        let mut c = Circuit::new(6);
        c.h(0).cnot(0, 1).rz(2, 0.3);
        let fused = c.fuse(&FusionPolicy::Disabled);
        let plan = DistPlan::new(&fused, 6, 3);
        assert_eq!(plan.remap_count(), 0);
        assert_eq!(plan.steps().len(), fused.ops().len());
        assert!(plan.final_map().is_identity());
    }

    #[test]
    fn uncontrolled_swaps_relabel_instead_of_remapping() {
        // A SWAP between a local and a *global* qubit plans zero remaps:
        // it becomes a map relabel, leaving a non-identity final map.
        let mut c = Circuit::new(6);
        c.swap(0, 5);
        let fused = c.fuse(&FusionPolicy::Disabled);
        let plan = DistPlan::new(&fused, 6, 3);
        assert_eq!(plan.remap_count(), 0);
        assert!(!plan.final_map().is_identity());
        assert_eq!(plan.final_map().slot(0), 5);
        assert_eq!(plan.final_map().slot(5), 0);
        // A *controlled* SWAP still wants locality.
        let mut c = Circuit::new(6);
        c.push(Gate::Swap {
            a: 0,
            b: 5,
            controls: vec![1],
        });
        let fused = c.fuse(&FusionPolicy::Disabled);
        let plan = DistPlan::new(&fused, 6, 3);
        assert_eq!(plan.remap_count(), 1);
    }

    #[test]
    fn diagonal_gates_on_global_qubits_need_no_remap() {
        let mut c = Circuit::new(6);
        c.rz(5, 0.3).cphase(4, 5, 0.7).z(4).cphase(0, 5, 0.2);
        let fused = c.fuse(&FusionPolicy::Disabled);
        let plan = DistPlan::new(&fused, 6, 4);
        assert_eq!(plan.remap_count(), 0);
    }

    #[test]
    fn global_hadamards_batch_into_one_remap() {
        // H on both global qubits: lookahead batches them into a single
        // 2-pair permutation instead of two separate remaps.
        let mut c = Circuit::new(6);
        c.h(4).h(5);
        let fused = c.fuse(&FusionPolicy::Disabled);
        let plan = DistPlan::new(&fused, 6, 4);
        assert_eq!(plan.remap_count(), 1);
        assert_eq!(plan.remapped_pairs(), 2);
    }

    #[test]
    fn qft_plans_far_fewer_remaps_than_global_exchanges() {
        // Per-gate execution of QFT(10) on P = 8 exchanges for each of the
        // 3 global Hadamards and each global-SWAP CNOT; the plan needs
        // only a handful of remaps.
        let n = 10;
        let fused = qft_circuit(n).fuse(&FusionPolicy::Disabled);
        let plan = DistPlan::new(&fused, n, 7);
        assert!(plan.remap_count() >= 1);
        assert!(
            plan.remap_count() <= 4,
            "QFT(10)/P=8 should need ≤ 4 remaps, planned {}",
            plan.remap_count()
        );
    }

    #[test]
    fn plan_is_passthrough_on_single_rank() {
        let fused = qft_circuit(6).fuse(&FusionPolicy::greedy());
        let plan = DistPlan::new(&fused, 6, 6);
        assert_eq!(plan.remap_count(), 0);
        // Standalone SWAPs may relabel the map, but nothing ships.
        assert!(plan.initial_map().is_identity());
    }
}

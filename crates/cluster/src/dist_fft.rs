//! Distributed 1-D FFT with three all-to-all transposes (paper Eq. 5).
//!
//! Same four-step structure as `qcemu_fft::fourstep`, but the transposes
//! are genuine all-to-all exchanges over the virtual cluster. The logical
//! vector of `N = N1·N2` amplitudes is viewed as an `N1×N2` row-major
//! matrix; rank `r` holds `N1/P` contiguous rows, which is exactly the
//! high-bit slice decomposition of [`crate::dist_state::DistributedState`].

use crate::comm::Comm;
use qcemu_fft::{fft_inplace, square_split, Direction, FftPlan, Normalization};
use qcemu_linalg::C64;

/// Distributed transpose of an `rows × cols` matrix whose rows are sliced
/// evenly over the ranks. Input: this rank's `rows/P` rows (row-major).
/// Output: this rank's `cols/P` rows of the transposed matrix.
pub fn distributed_transpose(local: &[C64], rows: usize, cols: usize, comm: &mut Comm) -> Vec<C64> {
    let p = comm.size();
    assert_eq!(rows % p, 0, "P must divide the row count");
    assert_eq!(cols % p, 0, "P must divide the column count");
    let my_rows = rows / p; // rows held before the transpose
    let out_rows = cols / p; // rows held after
    assert_eq!(local.len(), my_rows * cols, "local slice size mismatch");

    // Partition my rows into P column-blocks; block d goes to rank d.
    let chunks: Vec<Vec<C64>> = (0..p)
        .map(|dest| {
            let c0 = dest * out_rows;
            let mut block = Vec::with_capacity(my_rows * out_rows);
            for r in 0..my_rows {
                block.extend_from_slice(&local[r * cols + c0..r * cols + c0 + out_rows]);
            }
            block
        })
        .collect();

    let received = comm.all_to_all(chunks);

    // Assemble: the block from rank s covers original rows
    // [s·my_rows, (s+1)·my_rows) × my column range; transposed it fills
    // columns [s·my_rows, …) of my out_rows × rows matrix.
    let mut out = vec![C64::ZERO; out_rows * rows];
    for (src, block) in received.iter().enumerate() {
        assert_eq!(block.len(), my_rows * out_rows);
        let col0 = src * my_rows;
        for br in 0..my_rows {
            for bc in 0..out_rows {
                out[bc * rows + col0 + br] = block[br * out_rows + bc];
            }
        }
    }
    out
}

/// In-place distributed FFT of the slice-distributed vector of
/// `2^n_qubits` amplitudes. Requires `P ≤ min(N1, N2)` for the square
/// split (`P ≤ 2^{n/2}`), which the weak-scaling benchmarks satisfy.
///
/// Three [`distributed_transpose`] calls — the paper's three all-to-alls.
pub fn distributed_fft(
    local: &mut Vec<C64>,
    n_qubits: usize,
    dir: Direction,
    norm: Normalization,
    comm: &mut Comm,
) {
    let n = 1usize << n_qubits;
    let p = comm.size();
    let (n1, n2) = square_split(n);
    assert!(p <= n1 && p <= n2, "too many ranks for the matrix split");
    assert_eq!(local.len(), n / p, "local slice size mismatch");
    if n == 1 {
        return;
    }

    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let plan1 = FftPlan::new(n1);
    let plan2 = FftPlan::new(n2);

    // Transpose #1: N1×N2 → N2×N1; now rows are (original) columns.
    let mut t = distributed_transpose(local, n1, n2, comm);

    // Local FFTs of length N1 on each of my N2/P rows, then twiddle.
    let my_rows = n2 / p;
    let row0 = comm.rank() * my_rows;
    for lr in 0..my_rows {
        let row = &mut t[lr * n1..(lr + 1) * n1];
        fft_inplace(&plan1, row, dir, Normalization::None);
        let j2 = row0 + lr;
        let base = sign * std::f64::consts::TAU / n as f64;
        for (k1, z) in row.iter_mut().enumerate() {
            *z *= C64::cis(base * (j2 * k1) as f64);
        }
    }

    // Transpose #2: back to N1×N2.
    let mut u = distributed_transpose(&t, n2, n1, comm);

    // Local FFTs of length N2 on each of my N1/P rows.
    for row in u.chunks_mut(n2) {
        fft_inplace(&plan2, row, dir, Normalization::None);
    }

    // Transpose #3: element [k1][k2] holds X[k2·N1 + k1]; transposing to
    // N2×N1 puts X in natural order, slice-distributed.
    let mut out = distributed_transpose(&u, n1, n2, comm);

    let factor = norm.factor(n);
    if factor != 1.0 {
        for z in out.iter_mut() {
            *z *= factor;
        }
    }
    *local = out;
}

/// Number of all-to-all phases the distributed FFT performs (paper: 3).
pub const FFT_ALL_TO_ALL_PHASES: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run;
    use crate::model::MachineModel;
    use qcemu_fft::fft;
    use qcemu_linalg::{max_abs_diff, random_state};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distributed_transpose_matches_serial() {
        let mut rng = StdRng::seed_from_u64(21);
        let rows = 8;
        let cols = 16;
        let full = random_state(rows * cols, &mut rng);
        for p in [1usize, 2, 4, 8] {
            let full_ref = &full;
            let results = run(p, MachineModel::stampede(), move |comm| {
                let my_rows = rows / p;
                let start = comm.rank() * my_rows * cols;
                let local = full_ref[start..start + my_rows * cols].to_vec();
                distributed_transpose(&local, rows, cols, comm)
            });
            let serial = qcemu_fft::transpose(&full, rows, cols);
            let mut gathered = Vec::new();
            for (piece, _) in &results {
                gathered.extend_from_slice(piece);
            }
            assert!(
                max_abs_diff(&gathered, &serial) < 1e-15,
                "transpose mismatch at p = {p}"
            );
        }
    }

    #[test]
    fn distributed_fft_matches_serial_fft() {
        let mut rng = StdRng::seed_from_u64(22);
        for n_qubits in [4usize, 6, 8, 10] {
            let n = 1usize << n_qubits;
            let input = random_state(n, &mut rng);
            let mut expect = input.clone();
            fft(&mut expect, Direction::Inverse, Normalization::Sqrt);

            for p in [1usize, 2, 4] {
                let input_ref = &input;
                let results = run(p, MachineModel::stampede(), move |comm| {
                    let chunk = n / p;
                    let start = comm.rank() * chunk;
                    let mut local = input_ref[start..start + chunk].to_vec();
                    distributed_fft(
                        &mut local,
                        n_qubits,
                        Direction::Inverse,
                        Normalization::Sqrt,
                        comm,
                    );
                    local
                });
                let mut gathered = Vec::new();
                for (piece, _) in &results {
                    gathered.extend_from_slice(piece);
                }
                assert!(
                    max_abs_diff(&gathered, &expect) < 1e-9,
                    "dist FFT ≠ serial at n = {n_qubits}, p = {p}: {}",
                    max_abs_diff(&gathered, &expect)
                );
            }
        }
    }

    #[test]
    fn forward_inverse_roundtrip_distributed() {
        let mut rng = StdRng::seed_from_u64(23);
        let n_qubits = 8;
        let n = 1usize << n_qubits;
        let input = random_state(n, &mut rng);
        let input_ref = &input;
        let results = run(4, MachineModel::stampede(), move |comm| {
            let chunk = n / 4;
            let start = comm.rank() * chunk;
            let mut local = input_ref[start..start + chunk].to_vec();
            distributed_fft(
                &mut local,
                n_qubits,
                Direction::Forward,
                Normalization::Sqrt,
                comm,
            );
            distributed_fft(
                &mut local,
                n_qubits,
                Direction::Inverse,
                Normalization::Sqrt,
                comm,
            );
            local
        });
        let mut gathered = Vec::new();
        for (piece, _) in &results {
            gathered.extend_from_slice(piece);
        }
        assert!(max_abs_diff(&gathered, &input) < 1e-10);
    }

    #[test]
    fn communication_volume_is_three_all_to_alls() {
        // Each transpose sends (P−1)/P of the slice; three of them.
        let n_qubits = 10;
        let n = 1usize << n_qubits;
        let p = 4;
        let results = run(p, MachineModel::stampede(), move |comm| {
            let mut local = vec![C64::ZERO; n / p];
            local[0] = C64::ONE;
            distributed_fft(
                &mut local,
                n_qubits,
                Direction::Forward,
                Normalization::None,
                comm,
            );
            comm.bytes_sent()
        });
        let expected_per_rank = 3 * (n / p) * 16 * (p - 1) / p;
        for (bytes, _) in &results {
            assert_eq!(*bytes as usize, expected_per_rank);
        }
    }
}

//! Distributed state vectors: 2ⁿ amplitudes sliced over P ranks.
//!
//! Rank `r` owns the amplitudes whose top `log₂P` index bits equal `r`
//! (the standard qHiPSTER/our-simulator decomposition): qubits below
//! `n_local` are *local*, the top ones are *global*.
//!
//! Gate application rules (paper §4.5):
//! * local target → node-local kernel, no communication;
//! * global target, **diagonal** gate → multiply own slice by the right
//!   diagonal entry — **no communication** (this is "our simulator takes
//!   advantage of the structure of gate matrices, allowing e.g. to reduce
//!   the communication for diagonal gates such as the conditional phase
//!   shift");
//! * global target, general gate → pairwise slice exchange + butterfly;
//! * global controls cost nothing: ranks whose bit is 0 skip outright.
//!
//! The [`CommPolicy`] knob switches between that specialised behaviour and
//! a *generic* one (exchange + dense 2×2 for every global-target gate,
//! dense kernels locally) which models qHiPSTER for Fig. 4.

use crate::comm::Comm;
use crate::plan::{DistPlan, PlanStep, QubitMap};
use qcemu_linalg::C64;
use qcemu_sim::kernels::{self, apply_fused_diagonal, expand_index};
use qcemu_sim::{
    Circuit, FusedCircuit, FusedGate, FusedOp, FusionPolicy, Gate, GateOp, GateStructure,
    StateVector,
};

/// Gate-application strategy for the distributed simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommPolicy {
    /// Structure-specialised ("our simulator"): diagonal gates never
    /// communicate; kernels exploit structure locally.
    Specialized,
    /// Generic ("qHiPSTER-like"): every global-target gate exchanges the
    /// full slice; local gates use the dense 2×2 kernel.
    Generic,
}

/// One rank's shard of a distributed 2ⁿ-amplitude state.
///
/// Alongside the amplitude slice, each rank tracks the [`QubitMap`] of the
/// communication-avoiding execution path: logical (program) qubits are
/// relabelled onto physical slots by collective remap permutations, so
/// runs of gates that would otherwise exchange slices execute locally.
/// Remaps are collective and deterministic, so every rank holds the same
/// map at every step.
pub struct DistributedState {
    n_qubits: usize,
    n_local: usize,
    rank: usize,
    p: usize,
    local: Vec<C64>,
    exchanges: u64,
    remaps: u64,
    map: QubitMap,
}

impl DistributedState {
    /// `|0…0⟩` distributed over `comm.size()` ranks.
    pub fn zero_state(n_qubits: usize, comm: &Comm) -> DistributedState {
        let p = comm.size();
        assert!(p.is_power_of_two());
        let log_p = p.trailing_zeros() as usize;
        assert!(n_qubits >= log_p, "need at least log2(P) qubits");
        let n_local = n_qubits - log_p;
        let mut local = vec![C64::ZERO; 1usize << n_local];
        if comm.rank() == 0 {
            local[0] = C64::ONE;
        }
        DistributedState {
            n_qubits,
            n_local,
            rank: comm.rank(),
            p,
            local,
            exchanges: 0,
            remaps: 0,
            map: QubitMap::identity(n_qubits),
        }
    }

    /// Distributes an existing full state (every rank takes its slice).
    pub fn from_full(full: &StateVector, comm: &Comm) -> DistributedState {
        let p = comm.size();
        let log_p = p.trailing_zeros() as usize;
        let n_qubits = full.n_qubits();
        assert!(n_qubits >= log_p);
        let n_local = n_qubits - log_p;
        let chunk = 1usize << n_local;
        let start = comm.rank() * chunk;
        DistributedState {
            n_qubits,
            n_local,
            rank: comm.rank(),
            p,
            local: full.amplitudes()[start..start + chunk].to_vec(),
            exchanges: 0,
            remaps: 0,
            map: QubitMap::identity(n_qubits),
        }
    }

    /// Total qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Local (intra-rank) qubits.
    pub fn n_local_qubits(&self) -> usize {
        self.n_local
    }

    /// This rank's amplitude slice.
    pub fn local(&self) -> &[C64] {
        &self.local
    }

    /// Mutable access to the local slice (used by the distributed FFT).
    pub fn local_mut(&mut self) -> &mut Vec<C64> {
        &mut self.local
    }

    /// Number of pairwise slice exchanges performed so far — the
    /// communication count the Fig. 4 comparison is about. (Exchanges can
    /// ship partial slices; `Comm::bytes_sent` is the accounted quantity.)
    pub fn exchange_count(&self) -> u64 {
        self.exchanges
    }

    /// Number of batched remap permutations performed so far.
    pub fn remap_count(&self) -> u64 {
        self.remaps
    }

    /// The current logical→physical qubit map (identity until a plan with
    /// remaps executes).
    pub fn qubit_map(&self) -> &QubitMap {
        &self.map
    }

    /// `true` if physical slot `q` is stored within each rank.
    pub fn is_local(&self, q: usize) -> bool {
        q < self.n_local
    }

    fn global_bit(&self, q: usize) -> usize {
        (self.rank >> (q - self.n_local)) & 1
    }

    /// Applies one gate (logical qubit indices) under the given policy,
    /// translating through the current qubit map first.
    pub fn apply_gate(&mut self, gate: &Gate, comm: &mut Comm, policy: CommPolicy) {
        match gate {
            Gate::Unary {
                op,
                target,
                controls,
            } => {
                let t = self.map.slot(*target);
                let ctl: Vec<usize> = controls.iter().map(|&c| self.map.slot(c)).collect();
                self.apply_unary(op, t, &ctl, comm, policy);
            }
            Gate::Swap { a, b, controls } => {
                let sa = self.map.slot(*a);
                let sb = self.map.slot(*b);
                let ctl: Vec<usize> = controls.iter().map(|&c| self.map.slot(c)).collect();
                self.apply_swap_slots(sa, sb, &ctl, comm, policy);
            }
        }
    }

    /// (Possibly controlled) SWAP on physical slots: local kernel when
    /// every participant is local, three CNOTs otherwise.
    fn apply_swap_slots(
        &mut self,
        a: usize,
        b: usize,
        controls: &[usize],
        comm: &mut Comm,
        policy: CommPolicy,
    ) {
        let all_local =
            self.is_local(a) && self.is_local(b) && controls.iter().all(|&c| self.is_local(c));
        if all_local {
            kernels::apply_swap(&mut self.local, a, b, controls);
        } else {
            let mut cnot = |c: usize, t: usize| {
                let mut ctl = controls.to_vec();
                ctl.push(c);
                self.apply_unary(&GateOp::X, t, &ctl, comm, policy);
            };
            cnot(a, b);
            cnot(b, a);
            cnot(a, b);
        }
    }

    fn apply_unary(
        &mut self,
        op: &GateOp,
        target: usize,
        controls: &[usize],
        comm: &mut Comm,
        policy: CommPolicy,
    ) {
        let (local_controls, global_controls): (Vec<usize>, Vec<usize>) =
            controls.iter().partition(|&&c| self.is_local(c));

        // Global controls: if any is 0 on this rank, the gate is an
        // identity here — and on the partner rank too (partner differs only
        // in the target bit), so nobody communicates.
        if global_controls.iter().any(|&c| self.global_bit(c) == 0) {
            return;
        }

        if self.is_local(target) {
            match policy {
                CommPolicy::Specialized => {
                    let g = Gate::Unary {
                        op: op.clone(),
                        target,
                        controls: local_controls,
                    };
                    kernels::apply_gate_slice(&mut self.local, &g);
                }
                CommPolicy::Generic => {
                    // Dense 2×2 kernel regardless of structure.
                    kernels::apply_general(&mut self.local, target, &local_controls, &op.matrix());
                }
            }
            return;
        }

        // Global target.
        let my_bit = self.global_bit(target);
        let partner = self.rank ^ (1usize << (target - self.n_local));

        if policy == CommPolicy::Specialized {
            match op.structure() {
                GateStructure::Diagonal(d0, d1) => {
                    // No communication: scale own slice by the right entry.
                    let d = if my_bit == 0 { d0 } else { d1 };
                    if d != C64::ONE {
                        scale_selected(&mut self.local, &local_controls, d);
                    }
                    return;
                }
                GateStructure::PermutationX if local_controls.is_empty() => {
                    // Pure slice swap with the partner.
                    let mine = std::mem::take(&mut self.local);
                    self.local = comm.exchange(partner, mine);
                    self.exchanges += 1;
                    return;
                }
                _ => {}
            }
        }

        // General path: pairwise exchange + butterfly. Only the entries
        // the local controls select participate, so only those are sent:
        // a gate with c local controls ships |slice| / 2^c amplitudes
        // (and `Comm` charges exactly the bytes on the wire).
        let m = op.matrix();
        // new(me) = m[my_bit][0]·amp(bit=0) + m[my_bit][1]·amp(bit=1)
        let (c_own, c_other) = if my_bit == 0 {
            (m[0][0], m[0][1])
        } else {
            (m[1][1], m[1][0])
        };
        self.exchanges += 1;
        if local_controls.is_empty() {
            // Every entry participates: the clone *is* the send buffer.
            let remote = comm.exchange(partner, self.local.clone());
            for (mine, theirs) in self.local.iter_mut().zip(remote.iter()) {
                *mine = c_own * *mine + c_other * *theirs;
            }
        } else {
            // Compact gather of the control-selected subset. Both ranks
            // enumerate the same compressed indices in the same order, so
            // the payload needs no index side-channel.
            let mut positions = local_controls.clone();
            positions.sort_unstable();
            let cmask = positions.iter().fold(0usize, |acc, &c| acc | (1usize << c));
            let count = self.local.len() >> positions.len();
            let mut mine = Vec::with_capacity(count);
            for k in 0..count {
                mine.push(self.local[expand_index(k, &positions) | cmask]);
            }
            let theirs = comm.exchange(partner, mine);
            debug_assert_eq!(theirs.len(), count);
            for (k, other) in theirs.iter().enumerate() {
                let j = expand_index(k, &positions) | cmask;
                self.local[j] = c_own * self.local[j] + c_other * *other;
            }
        }
    }

    /// Applies a whole circuit gate by gate (the per-gate exchange
    /// baseline — no remapping; use [`DistributedState::run`] for the
    /// communication-avoiding path).
    pub fn apply_circuit(&mut self, circuit: &Circuit, comm: &mut Comm, policy: CommPolicy) {
        assert!(circuit.n_qubits() <= self.n_qubits);
        for g in circuit.gates() {
            self.apply_gate(g, comm, policy);
        }
    }

    /// Runs a fused circuit under a communication-avoiding plan: global
    /// qubits about to be used non-diagonally are remapped into local
    /// slots by batched all-to-all permutations, fused blocks execute on
    /// the local slice, and diagonal blocks touching global qubits apply
    /// with **zero** communication (each rank folds its fixed global bits
    /// into the factor index).
    ///
    /// # Panics
    ///
    /// Panics if a non-diagonal block is wider than `n_local` qubits — it
    /// could never be made fully local. Fuse with
    /// [`Circuit::fuse_within`] (window ≤ `n_local`) or use
    /// [`DistributedState::run_circuit`], which clamps automatically.
    pub fn run(&mut self, fused: &FusedCircuit, comm: &mut Comm) {
        assert!(fused.n_qubits() <= self.n_qubits);
        // Plan from the *current* map: a previous run may have left
        // qubits relabelled, and planning from the identity would mistake
        // evicted qubits for local ones.
        let plan = DistPlan::from_map(fused, self.n_qubits, self.n_local, self.map.clone());
        self.run_plan(&plan, fused, comm);
    }

    /// Fuses `circuit` under `fusion` with the window clamped to the
    /// local-slot count — keeping uncontrolled SWAPs out of blocks, so
    /// they execute as free qubit relabels — then
    /// [`runs`](DistributedState::run) it.
    pub fn run_circuit(&mut self, circuit: &Circuit, fusion: &FusionPolicy, comm: &mut Comm) {
        let policy = fusion.clamped(self.n_local.max(1));
        let fused = qcemu_sim::fuse_circuit_with_barriers(
            circuit,
            &policy,
            |g| matches!(g, Gate::Swap { controls, .. } if controls.is_empty()),
        );
        self.run(&fused, comm);
    }

    /// Executes a precomputed [`DistPlan`] over `fused`. The state's
    /// current qubit map must equal the map the plan was built from
    /// (asserted), so a plan is reusable across runs only when its final
    /// map equals its initial one; otherwise re-plan per run with
    /// [`DistPlan::from_map`] — or just call
    /// [`DistributedState::run`], which does exactly that.
    pub fn run_plan(&mut self, plan: &DistPlan, fused: &FusedCircuit, comm: &mut Comm) {
        assert_eq!(plan.op_count(), fused.ops().len(), "plan/circuit mismatch");
        assert_eq!(
            plan.geometry(),
            (self.n_qubits, self.n_local),
            "plan built for a different slice geometry"
        );
        assert_eq!(
            *plan.initial_map(),
            self.map,
            "plan assumes a different starting qubit map than the state's \
             current one (re-plan with DistPlan::from_map)"
        );
        for step in plan.steps() {
            match step {
                PlanStep::Remap(pairs) => self.remap(pairs, comm),
                PlanStep::Op(i) => self.apply_fused_op(&fused.ops()[*i], comm),
            }
        }
    }

    /// One planned op: single gates go through the structural per-gate
    /// path (with its exchange fallback), blocks through the fused local
    /// and diagonal-global appliers.
    fn apply_fused_op(&mut self, op: &FusedOp, comm: &mut Comm) {
        // Uncontrolled SWAPs are pure relabels on the planned path: the
        // map swap is the whole operation — zero bytes, zero sweeps.
        // (gather and later gate translation undo/consume the map.)
        if let Some((a, b)) = crate::plan::relabel_swap(op) {
            let (sa, sb) = (self.map.slot(a), self.map.slot(b));
            self.map.swap_slots(sa, sb);
            return;
        }
        match op {
            FusedOp::Gate(g) => self.apply_gate(g, comm, CommPolicy::Specialized),
            FusedOp::Block(b) => {
                let phys: Vec<usize> = b.qubits().iter().map(|&q| self.map.slot(q)).collect();
                if let Some(factors) = b.diagonal_factors() {
                    self.apply_diagonal_block(&phys, factors);
                } else if phys.iter().all(|&s| s < self.n_local) {
                    apply_block_at(&mut self.local, b, &phys);
                } else {
                    panic!(
                        "non-diagonal fused block on qubits {:?} cannot be localised \
                         (n_local = {}): fuse with a window ≤ n_local, e.g. via \
                         Circuit::fuse_within or DistributedState::run_circuit",
                        b.qubits(),
                        self.n_local
                    );
                }
            }
        }
    }

    /// Applies a diagonal fused block whose qubits may sit in global
    /// slots. Diagonals commute with the basis, so each rank reduces the
    /// 2ᵏ factor table by its own fixed global bits and scales only the
    /// selected local entries — no communication, the fused-block
    /// generalisation of the paper's diagonal-gate shortcut.
    fn apply_diagonal_block(&mut self, phys: &[usize], factors: &[C64]) {
        // (slot, block-bit) of the locally-stored block qubits, plus the
        // factor-index bits this rank's global coordinates pin.
        let mut local_bits: Vec<(usize, usize)> = Vec::new();
        let mut fixed = 0usize;
        for (j, &s) in phys.iter().enumerate() {
            if s < self.n_local {
                local_bits.push((s, j));
            } else if (self.rank >> (s - self.n_local)) & 1 == 1 {
                fixed |= 1 << j;
            }
        }
        if local_bits.is_empty() {
            let f = factors[fixed];
            if f != C64::ONE {
                for z in self.local.iter_mut() {
                    *z *= f;
                }
            }
            return;
        }
        local_bits.sort_unstable();
        let positions: Vec<usize> = local_bits.iter().map(|&(s, _)| s).collect();
        let reduced: Vec<C64> = (0..1usize << local_bits.len())
            .map(|w| {
                let mut v = fixed;
                for (t, &(_, j)) in local_bits.iter().enumerate() {
                    if (w >> t) & 1 == 1 {
                        v |= 1 << j;
                    }
                }
                factors[v]
            })
            .collect();
        apply_fused_diagonal(&mut self.local, &positions, &reduced);
    }

    /// Executes one batched slot permutation: every `(a, b)` pair swaps
    /// the contents of physical slots `a` and `b`. Local↔local pairs are
    /// in-slice bit swaps (no communication); local↔global pairs combine
    /// into **one** all-to-all permutation over this rank's XOR-coset —
    /// each rank keeps the `2⁻ᵏ` of its slice that stays home and sends
    /// one compact chunk to each of the `2ᵏ − 1` coset partners, i.e.
    /// `(1 − 2⁻ᵏ)` of a slice in total, *less* than one full pairwise
    /// exchange. Global↔global pairs are rejected (the planner never
    /// emits them).
    pub fn remap(&mut self, pairs: &[(usize, usize)], comm: &mut Comm) {
        let mut mixed: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in pairs {
            let (l, g) = if a <= b { (a, b) } else { (b, a) };
            if g < self.n_local {
                kernels::apply_swap(&mut self.local, l, g, &[]);
                self.map.swap_slots(l, g);
            } else {
                assert!(
                    l < self.n_local,
                    "remap cannot swap two global slots ({a}, {b})"
                );
                mixed.push((l, g));
            }
        }
        if mixed.is_empty() {
            return;
        }
        // Ascending local positions (expand_index's precondition); the
        // (local, global) pairing travels with the sort.
        mixed.sort_unstable();
        debug_assert!(
            mixed.windows(2).all(|w| w[0].0 != w[1].0) && {
                let mut g: Vec<usize> = mixed.iter().map(|&(_, g)| g).collect();
                g.sort_unstable();
                g.windows(2).all(|w| w[0] != w[1])
            },
            "remap pairs must use distinct slots"
        );
        let k = mixed.len();
        let lpos: Vec<usize> = mixed.iter().map(|&(l, _)| l).collect();
        let gbit: Vec<usize> = mixed.iter().map(|&(_, g)| g - self.n_local).collect();
        // Pattern p ↔ the k swapped bits: bit t of p is slot lpos[t]
        // locally, rank bit gbit[t] globally.
        let scatter = |pat: usize| -> usize { kernels::scatter_index(pat, &lpos) };
        let rank_with = |pat: usize| -> usize {
            gbit.iter().enumerate().fold(self.rank, |r, (t, &b)| {
                (r & !(1usize << b)) | (((pat >> t) & 1) << b)
            })
        };
        let my_pat = gbit
            .iter()
            .enumerate()
            .fold(0usize, |acc, (t, &b)| acc | (((self.rank >> b) & 1) << t));
        let count = self.local.len() >> k;

        // Bucket `pat` holds the entries whose swapped-local bits read
        // `pat` (ascending free bits) — after the swap those bits select
        // the rank, so the bucket belongs wholesale to coset partner
        // `rank_with(pat)`. Bucket `my_pat` stays in place bit-for-bit.
        let mut outgoing: Vec<(usize, Vec<C64>)> = Vec::with_capacity((1 << k) - 1);
        for pat in 0..(1usize << k) {
            if pat == my_pat {
                continue;
            }
            let base = scatter(pat);
            let mut payload = Vec::with_capacity(count);
            for m in 0..count {
                payload.push(self.local[expand_index(m, &lpos) | base]);
            }
            outgoing.push((rank_with(pat), payload));
        }
        let received = comm.exchange_all(outgoing);
        for (src, payload) in received {
            // Data from partner `src` lands where the swapped-local bits
            // read the *sender's* global pattern.
            let src_pat = gbit
                .iter()
                .enumerate()
                .fold(0usize, |acc, (t, &b)| acc | (((src >> b) & 1) << t));
            let base = scatter(src_pat);
            debug_assert_eq!(payload.len(), count);
            for (m, amp) in payload.into_iter().enumerate() {
                self.local[expand_index(m, &lpos) | base] = amp;
            }
        }
        self.remaps += 1;
        for &(l, g) in &mixed {
            self.map.swap_slots(l, g);
        }
    }

    /// Places rank `r`'s slice into `full` at the *logical* indices —
    /// undoing the physical relabelling the qubit map records.
    fn assemble(&self, full: &mut [C64], r: usize, slice: &[C64]) {
        let start = r << self.n_local;
        if self.map.is_identity() {
            full[start..start + slice.len()].copy_from_slice(slice);
        } else {
            for (j, &a) in slice.iter().enumerate() {
                full[self.map.logical_index(start | j)] = a;
            }
        }
    }

    /// Gathers the full state on rank 0 (others return `None`), in
    /// logical qubit order regardless of any remaps performed. (Remaps
    /// are collective, so rank 0's map describes every slice.)
    pub fn gather(&self, comm: &mut Comm) -> Option<StateVector> {
        if self.p == 1 {
            if self.map.is_identity() {
                return Some(StateVector::from_amplitudes(self.local.clone()));
            }
            let mut full = vec![C64::ZERO; 1usize << self.n_qubits];
            self.assemble(&mut full, 0, &self.local);
            return Some(StateVector::from_amplitudes(full));
        }
        if self.rank == 0 {
            let mut full = vec![C64::ZERO; 1usize << self.n_qubits];
            self.assemble(&mut full, 0, &self.local);
            for r in 1..self.p {
                let slice = comm.recv(r);
                self.assemble(&mut full, r, &slice);
            }
            Some(StateVector::from_amplitudes(full))
        } else {
            comm.send(0, self.local.clone());
            None
        }
    }

    /// Local contribution to `‖ψ‖²` (sum over all ranks gives 1).
    pub fn local_norm_sqr(&self) -> f64 {
        self.local.iter().map(|z| z.norm_sqr()).sum()
    }
}

/// Applies a fused block to a node-local slice with its qubits at
/// arbitrary — not necessarily ascending — physical bit positions:
/// gathers each 2ᵏ group into a buffer in block-local order, applies the
/// block ([`FusedGate::apply_buffer`]), and scatters back. The qubit-order
/// freedom is what lets remapped layouts reuse fused blocks unchanged.
fn apply_block_at(slice: &mut [C64], block: &FusedGate, phys: &[usize]) {
    let k = phys.len();
    let dim = 1usize << k;
    let mut sorted = phys.to_vec();
    sorted.sort_unstable();
    debug_assert!(sorted.windows(2).all(|w| w[0] != w[1]));
    // offs[v]: slice offset of block-local index v (bit j → bit phys[j];
    // scatter_index places bits at arbitrary, not necessarily ascending,
    // positions).
    let offs: Vec<usize> = (0..dim).map(|v| kernels::scatter_index(v, phys)).collect();
    let mut buf = vec![C64::ZERO; dim];
    for g in 0..(slice.len() >> k) {
        let base = kernels::expand_index(g, &sorted);
        for (v, &off) in offs.iter().enumerate() {
            buf[v] = slice[base | off];
        }
        block.apply_buffer(&mut buf);
        for (v, &off) in offs.iter().enumerate() {
            slice[base | off] = buf[v];
        }
    }
}

/// Multiplies entries whose local control bits are all 1 by `d`.
fn scale_selected(local: &mut [C64], local_controls: &[usize], d: C64) {
    if local_controls.is_empty() {
        for z in local.iter_mut() {
            *z *= d;
        }
    } else {
        let cmask = local_controls
            .iter()
            .fold(0usize, |acc, &c| acc | (1usize << c));
        for (j, z) in local.iter_mut().enumerate() {
            if j & cmask == cmask {
                *z *= d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run;
    use crate::model::MachineModel;
    use qcemu_linalg::random_state;
    use qcemu_sim::circuits::{entangle_circuit, qft_circuit, tfim_trotter_step, TfimParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs `circuit` on `p` ranks under `policy` and checks the gathered
    /// state equals single-process simulation.
    fn check_distributed(circuit: &Circuit, n_qubits: usize, p: usize, policy: CommPolicy) {
        let mut rng = StdRng::seed_from_u64(7 + n_qubits as u64 + p as u64);
        let input = StateVector::from_amplitudes(random_state(1 << n_qubits, &mut rng));
        let mut expect = input.clone();
        expect.apply_circuit(circuit);

        let input_ref = &input;
        let results = run(p, MachineModel::stampede(), move |comm| {
            let mut ds = DistributedState::from_full(input_ref, comm);
            ds.apply_circuit(circuit, comm, policy);
            ds.gather(comm)
        });
        let gathered = results[0].0.as_ref().expect("rank 0 gathers");
        assert!(
            gathered.max_diff_up_to_phase(&expect) < 1e-10,
            "distributed ≠ serial (n={n_qubits}, p={p}, {policy:?}): {}",
            gathered.max_diff_up_to_phase(&expect)
        );
    }

    #[test]
    fn zero_state_distribution() {
        let results = run(4, MachineModel::stampede(), |comm| {
            let ds = DistributedState::zero_state(6, comm);
            (ds.n_local_qubits(), ds.local_norm_sqr())
        });
        for (rank, ((n_local, norm), _)) in results.iter().enumerate() {
            assert_eq!(*n_local, 4);
            let expect = if rank == 0 { 1.0 } else { 0.0 };
            assert_eq!(*norm, expect);
        }
    }

    #[test]
    fn qft_distributed_matches_serial_all_policies() {
        let circuit = qft_circuit(8);
        for p in [1usize, 2, 4, 8] {
            check_distributed(&circuit, 8, p, CommPolicy::Specialized);
            check_distributed(&circuit, 8, p, CommPolicy::Generic);
        }
    }

    #[test]
    fn entangle_distributed_matches_serial() {
        let circuit = entangle_circuit(7);
        for p in [2usize, 4] {
            check_distributed(&circuit, 7, p, CommPolicy::Specialized);
            check_distributed(&circuit, 7, p, CommPolicy::Generic);
        }
    }

    #[test]
    fn tfim_distributed_matches_serial() {
        let circuit = tfim_trotter_step(6, TfimParams::default());
        check_distributed(&circuit, 6, 4, CommPolicy::Specialized);
        check_distributed(&circuit, 6, 4, CommPolicy::Generic);
    }

    #[test]
    fn global_swap_gate_works() {
        let mut c = Circuit::new(6);
        c.h(0).swap(0, 5).cnot(5, 2);
        check_distributed(&c, 6, 4, CommPolicy::Specialized);
    }

    #[test]
    fn diagonal_gates_need_no_communication_under_specialized_policy() {
        // A circuit of only diagonal gates on *global* qubits.
        let mut c = Circuit::new(6);
        c.rz(4, 0.3)
            .cphase(4, 5, 0.7)
            .z(5)
            .phase(4, 0.2)
            .cphase(0, 5, 0.9);
        let c = &c;
        let results = run(4, MachineModel::stampede(), move |comm| {
            let mut ds = DistributedState::zero_state(6, comm);
            // Put some weight everywhere first, locally (H on local qubits
            // needs no comm either).
            for q in 0..4 {
                ds.apply_gate(&Gate::h(q), comm, CommPolicy::Specialized);
            }
            ds.apply_circuit(c, comm, CommPolicy::Specialized);
            (ds.exchange_count(), comm.bytes_sent())
        });
        for (rank, ((exchanges, bytes), _)) in results.iter().enumerate() {
            assert_eq!(*exchanges, 0, "rank {rank} exchanged");
            assert_eq!(*bytes, 0, "rank {rank} sent bytes");
        }
        // …and the same circuit under the generic policy must communicate.
        let results = run(4, MachineModel::stampede(), move |comm| {
            let mut ds = DistributedState::zero_state(6, comm);
            ds.apply_circuit(c, comm, CommPolicy::Generic);
            ds.exchange_count()
        });
        for (exchanges, _) in &results {
            assert!(
                *exchanges > 0,
                "generic policy must exchange for global diagonals"
            );
        }
    }

    #[test]
    fn global_controls_cost_nothing() {
        // CNOT controlled by a global qubit that is |0⟩: no work, no comm.
        let results = run(2, MachineModel::stampede(), |comm| {
            let mut ds = DistributedState::zero_state(5, comm);
            ds.apply_gate(&Gate::cnot(4, 0), comm, CommPolicy::Specialized);
            (ds.exchange_count(), ds.gather(comm))
        });
        assert_eq!(results[0].0 .0, 0);
        let sv = results[0].0 .1.as_ref().unwrap();
        assert_eq!(sv.probability(0), 1.0, "state unchanged");
    }

    #[test]
    fn exchange_counts_differ_between_policies_on_qft() {
        // Fig. 4's mechanism: the QFT is mostly controlled phases, so on
        // global qubits the specialised simulator exchanges only for H (and
        // the final swaps), the generic one for everything.
        let n = 8;
        let circuit = qft_circuit(n);
        let circuit = &circuit;
        let count = |policy: CommPolicy| {
            let results = run(4, MachineModel::stampede(), move |comm| {
                let mut ds = DistributedState::zero_state(n, comm);
                ds.apply_circuit(circuit, comm, policy);
                ds.exchange_count()
            });
            results.iter().map(|r| r.0).max().unwrap()
        };
        let spec = count(CommPolicy::Specialized);
        let gen = count(CommPolicy::Generic);
        assert!(
            spec < gen,
            "specialised exchanges ({spec}) must be fewer than generic ({gen})"
        );
    }

    /// Runs a fused `circuit` on `p` ranks through the planned
    /// (remap + fusion) path and checks the gathered state against serial
    /// execution.
    fn check_planned(circuit: &Circuit, n_qubits: usize, p: usize, fusion: FusionPolicy) {
        let mut rng = StdRng::seed_from_u64(40 + n_qubits as u64 + p as u64);
        let input = StateVector::from_amplitudes(random_state(1 << n_qubits, &mut rng));
        let mut expect = input.clone();
        expect.apply_circuit(circuit);

        let input_ref = &input;
        let results = run(p, MachineModel::stampede(), move |comm| {
            let mut ds = DistributedState::from_full(input_ref, comm);
            ds.run_circuit(circuit, &fusion, comm);
            (ds.gather(comm), ds.remap_count())
        });
        let gathered = results[0].0 .0.as_ref().expect("rank 0 gathers");
        assert!(
            gathered.max_diff_up_to_phase(&expect) < 1e-12,
            "planned ≠ serial (n={n_qubits}, p={p}, {fusion:?}): {}",
            gathered.max_diff_up_to_phase(&expect)
        );
    }

    #[test]
    fn planned_qft_matches_serial_with_and_without_fusion() {
        let circuit = qft_circuit(8);
        for p in [1usize, 2, 4, 8] {
            check_planned(&circuit, 8, p, FusionPolicy::Disabled);
            check_planned(&circuit, 8, p, FusionPolicy::greedy());
        }
    }

    #[test]
    fn planned_entangle_and_tfim_match_serial() {
        let entangle = entangle_circuit(7);
        let tfim = tfim_trotter_step(6, TfimParams::default());
        for p in [2usize, 4, 8] {
            check_planned(&entangle, 7, p, FusionPolicy::Disabled);
            check_planned(&entangle, 7, p, FusionPolicy::greedy());
            check_planned(&tfim, 6, p, FusionPolicy::Disabled);
            check_planned(&tfim, 6, p, FusionPolicy::greedy());
        }
    }

    #[test]
    fn repeated_runs_replan_from_the_live_map() {
        // A second run on the same state must plan from the map the first
        // run left behind (planning from the identity used to panic on
        // "cannot be localised" and would compute wrong amplitudes).
        let n = 8;
        let circuit = qft_circuit(n);
        let circuit = &circuit;
        let mut expect = StateVector::zero_state(n);
        expect.apply_circuit(circuit);
        expect.apply_circuit(circuit);
        for p in [2usize, 4, 8] {
            let results = run(p, MachineModel::stampede(), move |comm| {
                let mut ds = DistributedState::zero_state(n, comm);
                ds.run_circuit(circuit, &FusionPolicy::greedy(), comm);
                ds.run_circuit(circuit, &FusionPolicy::greedy(), comm);
                ds.gather(comm)
            });
            let gathered = results[0].0.as_ref().unwrap();
            assert!(
                gathered.max_diff_up_to_phase(&expect) < 1e-12,
                "P = {p}: double run diverges"
            );
        }
    }

    #[test]
    fn uncontrolled_swaps_are_free_relabels_on_the_planned_path() {
        // A circuit ending in a SWAP network: on the planned path the
        // swaps must cost zero bytes beyond the Hadamard remap.
        let n = 8;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for i in 0..n / 2 {
            c.swap(i, n - 1 - i);
        }
        let c = &c;
        let results = run(4, MachineModel::stampede(), move |comm| {
            let mut ds = DistributedState::zero_state(n, comm);
            // Hadamards on local qubits are free; only the two global
            // ones force one remap. The swaps must add nothing.
            ds.run_circuit(c, &FusionPolicy::Disabled, comm);
            (comm.bytes_sent(), ds.remap_count(), ds.gather(comm))
        });
        let slice_bytes = (1u64 << (n - 2)) * 16;
        for (rank, ((bytes, remaps, _), _)) in results.iter().enumerate() {
            assert_eq!(*remaps, 1, "rank {rank}: one remap for the global Hs");
            assert_eq!(
                *bytes,
                slice_bytes * 3 / 4,
                "rank {rank}: swaps must ship no bytes"
            );
        }
        let mut expect = StateVector::zero_state(n);
        expect.apply_circuit(&{
            let mut c2 = Circuit::new(n);
            for q in 0..n {
                c2.h(q);
            }
            for i in 0..n / 2 {
                c2.swap(i, n - 1 - i);
            }
            c2
        });
        let gathered = results[0].0 .2.as_ref().unwrap();
        assert!(gathered.max_diff_up_to_phase(&expect) < 1e-12);
    }

    #[test]
    fn remap_moves_slots_and_roundtrips() {
        // Swap local slot 0 with global slot 5 on P = 4, then swap back:
        // the state must be bitwise restored and the map identity again.
        let mut rng = StdRng::seed_from_u64(57);
        let input = StateVector::from_amplitudes(random_state(64, &mut rng));
        let input_ref = &input;
        let results = run(4, MachineModel::stampede(), move |comm| {
            let mut ds = DistributedState::from_full(input_ref, comm);
            ds.remap(&[(0, 5)], comm);
            let mid_identity = ds.qubit_map().is_identity();
            // While remapped, the gathered state must equal the original
            // (the permutation is layout-only, undone by gather).
            let mid = ds.gather(comm);
            ds.remap(&[(0, 5)], comm);
            (
                mid_identity,
                mid,
                ds.qubit_map().is_identity(),
                ds.gather(comm),
                ds.remap_count(),
            )
        });
        let (mid_identity, mid, back_identity, fin, remaps) = &results[0].0;
        assert!(!mid_identity);
        assert!(*back_identity);
        assert_eq!(*remaps, 2);
        assert!(mid.as_ref().unwrap().max_diff_up_to_phase(&input) < 1e-15);
        assert!(fin.as_ref().unwrap().max_diff_up_to_phase(&input) < 1e-15);
    }

    #[test]
    fn remap_batch_costs_less_than_one_exchange() {
        // A 2-pair remap on P = 4 moves 3/4 of each slice; a single
        // global-target exchange moves the whole slice.
        let n = 8;
        let results = run(4, MachineModel::stampede(), move |comm| {
            let mut ds = DistributedState::zero_state(n, comm);
            ds.remap(&[(0, 6), (1, 7)], comm);
            comm.bytes_sent()
        });
        let slice_bytes = (1u64 << (n - 2)) * 16;
        for (bytes, _) in &results {
            assert_eq!(*bytes, slice_bytes * 3 / 4, "remap must ship 3/4 slice");
            assert!(*bytes < slice_bytes);
        }
    }

    #[test]
    fn planned_qft_sends_fewer_bytes_than_per_gate() {
        // The tentpole claim at executed scale: remap(+fusion) beats the
        // per-gate exchange path on bytes for the Fig. 4 QFT workload.
        let n = 10;
        let circuit = qft_circuit(n);
        let circuit = &circuit;
        for p in [2usize, 4, 8] {
            let bytes = |mode: usize| {
                let results = run(p, MachineModel::stampede(), move |comm| {
                    let mut ds = DistributedState::zero_state(n, comm);
                    match mode {
                        0 => ds.apply_circuit(circuit, comm, CommPolicy::Specialized),
                        1 => ds.run_circuit(circuit, &FusionPolicy::Disabled, comm),
                        _ => ds.run_circuit(circuit, &FusionPolicy::greedy(), comm),
                    }
                    comm.bytes_sent()
                });
                results.iter().map(|r| r.0).sum::<u64>()
            };
            let per_gate = bytes(0);
            let remap = bytes(1);
            let remap_fused = bytes(2);
            assert!(
                remap < per_gate,
                "P={p}: remap ({remap}) must beat per-gate ({per_gate})"
            );
            assert!(
                remap_fused < per_gate,
                "P={p}: remap+fusion ({remap_fused}) must beat per-gate ({per_gate})"
            );
        }
    }

    #[test]
    fn controlled_global_gate_ships_only_selected_entries() {
        // A controlled-H with a global target and one *local* control
        // must exchange half a slice, not a whole one.
        let n = 6;
        let results = run(2, MachineModel::stampede(), move |comm| {
            let mut ds = DistributedState::zero_state(n, comm);
            for q in 0..n - 1 {
                ds.apply_gate(&Gate::h(q), comm, CommPolicy::Specialized);
            }
            let before = comm.bytes_sent();
            ds.apply_gate(
                &Gate::controlled(qcemu_sim::GateOp::H, 0, n - 1),
                comm,
                CommPolicy::Specialized,
            );
            (comm.bytes_sent() - before, ds.gather(comm))
        });
        let slice_bytes = (1u64 << (n - 1)) * 16;
        for (rank, ((bytes, _), _)) in results.iter().enumerate() {
            assert_eq!(
                *bytes,
                slice_bytes / 2,
                "rank {rank} must ship only the control-selected half"
            );
        }
        // And the result still matches serial execution.
        let mut expect = StateVector::zero_state(n);
        for q in 0..n - 1 {
            expect.apply(&Gate::h(q));
        }
        expect.apply(&Gate::controlled(qcemu_sim::GateOp::H, 0, n - 1));
        let gathered = results[0].0 .1.as_ref().unwrap();
        assert!(gathered.max_diff_up_to_phase(&expect) < 1e-12);
    }

    #[test]
    fn from_full_and_gather_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        let input = StateVector::from_amplitudes(random_state(64, &mut rng));
        let input_ref = &input;
        let results = run(8, MachineModel::stampede(), move |comm| {
            let ds = DistributedState::from_full(input_ref, comm);
            ds.gather(comm)
        });
        let sv = results[0].0.as_ref().unwrap();
        assert!(sv.max_diff_up_to_phase(&input) < 1e-15);
    }
}

//! Distributed state vectors: 2ⁿ amplitudes sliced over P ranks.
//!
//! Rank `r` owns the amplitudes whose top `log₂P` index bits equal `r`
//! (the standard qHiPSTER/our-simulator decomposition): qubits below
//! `n_local` are *local*, the top ones are *global*.
//!
//! Gate application rules (paper §4.5):
//! * local target → node-local kernel, no communication;
//! * global target, **diagonal** gate → multiply own slice by the right
//!   diagonal entry — **no communication** (this is "our simulator takes
//!   advantage of the structure of gate matrices, allowing e.g. to reduce
//!   the communication for diagonal gates such as the conditional phase
//!   shift");
//! * global target, general gate → pairwise slice exchange + butterfly;
//! * global controls cost nothing: ranks whose bit is 0 skip outright.
//!
//! The [`CommPolicy`] knob switches between that specialised behaviour and
//! a *generic* one (exchange + dense 2×2 for every global-target gate,
//! dense kernels locally) which models qHiPSTER for Fig. 4.

use crate::comm::Comm;
use qcemu_linalg::C64;
use qcemu_sim::kernels;
use qcemu_sim::{Circuit, Gate, GateOp, GateStructure, StateVector};

/// Gate-application strategy for the distributed simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommPolicy {
    /// Structure-specialised ("our simulator"): diagonal gates never
    /// communicate; kernels exploit structure locally.
    Specialized,
    /// Generic ("qHiPSTER-like"): every global-target gate exchanges the
    /// full slice; local gates use the dense 2×2 kernel.
    Generic,
}

/// One rank's shard of a distributed 2ⁿ-amplitude state.
pub struct DistributedState {
    n_qubits: usize,
    n_local: usize,
    rank: usize,
    p: usize,
    local: Vec<C64>,
    exchanges: u64,
}

impl DistributedState {
    /// `|0…0⟩` distributed over `comm.size()` ranks.
    pub fn zero_state(n_qubits: usize, comm: &Comm) -> DistributedState {
        let p = comm.size();
        assert!(p.is_power_of_two());
        let log_p = p.trailing_zeros() as usize;
        assert!(n_qubits >= log_p, "need at least log2(P) qubits");
        let n_local = n_qubits - log_p;
        let mut local = vec![C64::ZERO; 1usize << n_local];
        if comm.rank() == 0 {
            local[0] = C64::ONE;
        }
        DistributedState {
            n_qubits,
            n_local,
            rank: comm.rank(),
            p,
            local,
            exchanges: 0,
        }
    }

    /// Distributes an existing full state (every rank takes its slice).
    pub fn from_full(full: &StateVector, comm: &Comm) -> DistributedState {
        let p = comm.size();
        let log_p = p.trailing_zeros() as usize;
        let n_qubits = full.n_qubits();
        assert!(n_qubits >= log_p);
        let n_local = n_qubits - log_p;
        let chunk = 1usize << n_local;
        let start = comm.rank() * chunk;
        DistributedState {
            n_qubits,
            n_local,
            rank: comm.rank(),
            p,
            local: full.amplitudes()[start..start + chunk].to_vec(),
            exchanges: 0,
        }
    }

    /// Total qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Local (intra-rank) qubits.
    pub fn n_local_qubits(&self) -> usize {
        self.n_local
    }

    /// This rank's amplitude slice.
    pub fn local(&self) -> &[C64] {
        &self.local
    }

    /// Mutable access to the local slice (used by the distributed FFT).
    pub fn local_mut(&mut self) -> &mut Vec<C64> {
        &mut self.local
    }

    /// Number of pairwise slice exchanges performed so far — the
    /// communication count the Fig. 4 comparison is about.
    pub fn exchange_count(&self) -> u64 {
        self.exchanges
    }

    /// `true` if qubit `q` is stored within each rank.
    pub fn is_local(&self, q: usize) -> bool {
        q < self.n_local
    }

    fn global_bit(&self, q: usize) -> usize {
        (self.rank >> (q - self.n_local)) & 1
    }

    /// Applies one gate under the given policy.
    pub fn apply_gate(&mut self, gate: &Gate, comm: &mut Comm, policy: CommPolicy) {
        match gate {
            Gate::Unary {
                op,
                target,
                controls,
            } => self.apply_unary(op, *target, controls, comm, policy),
            Gate::Swap { a, b, controls } => {
                // Decompose (possibly controlled) SWAP into three CNOTs if
                // any participant is global; otherwise run the local kernel.
                let all_local = self.is_local(*a)
                    && self.is_local(*b)
                    && controls.iter().all(|&c| self.is_local(c));
                if all_local {
                    kernels::apply_swap(&mut self.local, *a, *b, controls);
                } else {
                    let mut cnot = |c: usize, t: usize| {
                        let mut ctl = controls.clone();
                        ctl.push(c);
                        self.apply_unary(&GateOp::X, t, &ctl, comm, policy);
                    };
                    cnot(*a, *b);
                    cnot(*b, *a);
                    cnot(*a, *b);
                }
            }
        }
    }

    fn apply_unary(
        &mut self,
        op: &GateOp,
        target: usize,
        controls: &[usize],
        comm: &mut Comm,
        policy: CommPolicy,
    ) {
        let (local_controls, global_controls): (Vec<usize>, Vec<usize>) =
            controls.iter().partition(|&&c| self.is_local(c));

        // Global controls: if any is 0 on this rank, the gate is an
        // identity here — and on the partner rank too (partner differs only
        // in the target bit), so nobody communicates.
        if global_controls.iter().any(|&c| self.global_bit(c) == 0) {
            return;
        }

        if self.is_local(target) {
            match policy {
                CommPolicy::Specialized => {
                    let g = Gate::Unary {
                        op: op.clone(),
                        target,
                        controls: local_controls,
                    };
                    kernels::apply_gate_slice(&mut self.local, &g);
                }
                CommPolicy::Generic => {
                    // Dense 2×2 kernel regardless of structure.
                    kernels::apply_general(&mut self.local, target, &local_controls, &op.matrix());
                }
            }
            return;
        }

        // Global target.
        let my_bit = self.global_bit(target);
        let partner = self.rank ^ (1usize << (target - self.n_local));

        if policy == CommPolicy::Specialized {
            match op.structure() {
                GateStructure::Diagonal(d0, d1) => {
                    // No communication: scale own slice by the right entry.
                    let d = if my_bit == 0 { d0 } else { d1 };
                    if d != C64::ONE {
                        scale_selected(&mut self.local, &local_controls, d);
                    }
                    return;
                }
                GateStructure::PermutationX if local_controls.is_empty() => {
                    // Pure slice swap with the partner.
                    let mine = std::mem::take(&mut self.local);
                    self.local = comm.exchange(partner, mine);
                    self.exchanges += 1;
                    return;
                }
                _ => {}
            }
        }

        // General path: full slice exchange + butterfly.
        let remote = comm.exchange(partner, self.local.clone());
        self.exchanges += 1;
        let m = op.matrix();
        // new(me) = m[my_bit][0]·amp(bit=0) + m[my_bit][1]·amp(bit=1)
        let (c_own, c_other) = if my_bit == 0 {
            (m[0][0], m[0][1])
        } else {
            (m[1][1], m[1][0])
        };
        if local_controls.is_empty() {
            for (mine, theirs) in self.local.iter_mut().zip(remote.iter()) {
                *mine = c_own * *mine + c_other * *theirs;
            }
        } else {
            let cmask = local_controls
                .iter()
                .fold(0usize, |acc, &c| acc | (1usize << c));
            for (j, (mine, theirs)) in self.local.iter_mut().zip(remote.iter()).enumerate() {
                if j & cmask == cmask {
                    *mine = c_own * *mine + c_other * *theirs;
                }
            }
        }
    }

    /// Applies a whole circuit.
    pub fn apply_circuit(&mut self, circuit: &Circuit, comm: &mut Comm, policy: CommPolicy) {
        assert!(circuit.n_qubits() <= self.n_qubits);
        for g in circuit.gates() {
            self.apply_gate(g, comm, policy);
        }
    }

    /// Gathers the full state on rank 0 (others return `None`).
    pub fn gather(&self, comm: &mut Comm) -> Option<StateVector> {
        if self.p == 1 {
            return Some(StateVector::from_amplitudes(self.local.clone()));
        }
        if self.rank == 0 {
            let mut full = vec![C64::ZERO; 1usize << self.n_qubits];
            full[..self.local.len()].copy_from_slice(&self.local);
            for r in 1..self.p {
                let slice = comm.recv(r);
                let start = r << self.n_local;
                full[start..start + slice.len()].copy_from_slice(&slice);
            }
            Some(StateVector::from_amplitudes(full))
        } else {
            comm.send(0, self.local.clone());
            None
        }
    }

    /// Local contribution to `‖ψ‖²` (sum over all ranks gives 1).
    pub fn local_norm_sqr(&self) -> f64 {
        self.local.iter().map(|z| z.norm_sqr()).sum()
    }
}

/// Multiplies entries whose local control bits are all 1 by `d`.
fn scale_selected(local: &mut [C64], local_controls: &[usize], d: C64) {
    if local_controls.is_empty() {
        for z in local.iter_mut() {
            *z *= d;
        }
    } else {
        let cmask = local_controls
            .iter()
            .fold(0usize, |acc, &c| acc | (1usize << c));
        for (j, z) in local.iter_mut().enumerate() {
            if j & cmask == cmask {
                *z *= d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run;
    use crate::model::MachineModel;
    use qcemu_linalg::random_state;
    use qcemu_sim::circuits::{entangle_circuit, qft_circuit, tfim_trotter_step, TfimParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs `circuit` on `p` ranks under `policy` and checks the gathered
    /// state equals single-process simulation.
    fn check_distributed(circuit: &Circuit, n_qubits: usize, p: usize, policy: CommPolicy) {
        let mut rng = StdRng::seed_from_u64(7 + n_qubits as u64 + p as u64);
        let input = StateVector::from_amplitudes(random_state(1 << n_qubits, &mut rng));
        let mut expect = input.clone();
        expect.apply_circuit(circuit);

        let input_ref = &input;
        let results = run(p, MachineModel::stampede(), move |comm| {
            let mut ds = DistributedState::from_full(input_ref, comm);
            ds.apply_circuit(circuit, comm, policy);
            ds.gather(comm)
        });
        let gathered = results[0].0.as_ref().expect("rank 0 gathers");
        assert!(
            gathered.max_diff_up_to_phase(&expect) < 1e-10,
            "distributed ≠ serial (n={n_qubits}, p={p}, {policy:?}): {}",
            gathered.max_diff_up_to_phase(&expect)
        );
    }

    #[test]
    fn zero_state_distribution() {
        let results = run(4, MachineModel::stampede(), |comm| {
            let ds = DistributedState::zero_state(6, comm);
            (ds.n_local_qubits(), ds.local_norm_sqr())
        });
        for (rank, ((n_local, norm), _)) in results.iter().enumerate() {
            assert_eq!(*n_local, 4);
            let expect = if rank == 0 { 1.0 } else { 0.0 };
            assert_eq!(*norm, expect);
        }
    }

    #[test]
    fn qft_distributed_matches_serial_all_policies() {
        let circuit = qft_circuit(8);
        for p in [1usize, 2, 4, 8] {
            check_distributed(&circuit, 8, p, CommPolicy::Specialized);
            check_distributed(&circuit, 8, p, CommPolicy::Generic);
        }
    }

    #[test]
    fn entangle_distributed_matches_serial() {
        let circuit = entangle_circuit(7);
        for p in [2usize, 4] {
            check_distributed(&circuit, 7, p, CommPolicy::Specialized);
            check_distributed(&circuit, 7, p, CommPolicy::Generic);
        }
    }

    #[test]
    fn tfim_distributed_matches_serial() {
        let circuit = tfim_trotter_step(6, TfimParams::default());
        check_distributed(&circuit, 6, 4, CommPolicy::Specialized);
        check_distributed(&circuit, 6, 4, CommPolicy::Generic);
    }

    #[test]
    fn global_swap_gate_works() {
        let mut c = Circuit::new(6);
        c.h(0).swap(0, 5).cnot(5, 2);
        check_distributed(&c, 6, 4, CommPolicy::Specialized);
    }

    #[test]
    fn diagonal_gates_need_no_communication_under_specialized_policy() {
        // A circuit of only diagonal gates on *global* qubits.
        let mut c = Circuit::new(6);
        c.rz(4, 0.3)
            .cphase(4, 5, 0.7)
            .z(5)
            .phase(4, 0.2)
            .cphase(0, 5, 0.9);
        let c = &c;
        let results = run(4, MachineModel::stampede(), move |comm| {
            let mut ds = DistributedState::zero_state(6, comm);
            // Put some weight everywhere first, locally (H on local qubits
            // needs no comm either).
            for q in 0..4 {
                ds.apply_gate(&Gate::h(q), comm, CommPolicy::Specialized);
            }
            ds.apply_circuit(c, comm, CommPolicy::Specialized);
            (ds.exchange_count(), comm.bytes_sent())
        });
        for (rank, ((exchanges, bytes), _)) in results.iter().enumerate() {
            assert_eq!(*exchanges, 0, "rank {rank} exchanged");
            assert_eq!(*bytes, 0, "rank {rank} sent bytes");
        }
        // …and the same circuit under the generic policy must communicate.
        let results = run(4, MachineModel::stampede(), move |comm| {
            let mut ds = DistributedState::zero_state(6, comm);
            ds.apply_circuit(c, comm, CommPolicy::Generic);
            ds.exchange_count()
        });
        for (exchanges, _) in &results {
            assert!(
                *exchanges > 0,
                "generic policy must exchange for global diagonals"
            );
        }
    }

    #[test]
    fn global_controls_cost_nothing() {
        // CNOT controlled by a global qubit that is |0⟩: no work, no comm.
        let results = run(2, MachineModel::stampede(), |comm| {
            let mut ds = DistributedState::zero_state(5, comm);
            ds.apply_gate(&Gate::cnot(4, 0), comm, CommPolicy::Specialized);
            (ds.exchange_count(), ds.gather(comm))
        });
        assert_eq!(results[0].0 .0, 0);
        let sv = results[0].0 .1.as_ref().unwrap();
        assert_eq!(sv.probability(0), 1.0, "state unchanged");
    }

    #[test]
    fn exchange_counts_differ_between_policies_on_qft() {
        // Fig. 4's mechanism: the QFT is mostly controlled phases, so on
        // global qubits the specialised simulator exchanges only for H (and
        // the final swaps), the generic one for everything.
        let n = 8;
        let circuit = qft_circuit(n);
        let circuit = &circuit;
        let count = |policy: CommPolicy| {
            let results = run(4, MachineModel::stampede(), move |comm| {
                let mut ds = DistributedState::zero_state(n, comm);
                ds.apply_circuit(circuit, comm, policy);
                ds.exchange_count()
            });
            results.iter().map(|r| r.0).max().unwrap()
        };
        let spec = count(CommPolicy::Specialized);
        let gen = count(CommPolicy::Generic);
        assert!(
            spec < gen,
            "specialised exchanges ({spec}) must be fewer than generic ({gen})"
        );
    }

    #[test]
    fn from_full_and_gather_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        let input = StateVector::from_amplitudes(random_state(64, &mut rng));
        let input_ref = &input;
        let results = run(8, MachineModel::stampede(), move |comm| {
            let ds = DistributedState::from_full(input_ref, comm);
            ds.gather(comm)
        });
        let sv = results[0].0.as_ref().unwrap();
        assert!(sv.max_diff_up_to_phase(&input) < 1e-15);
    }
}

//! Analytic performance models — paper Eq. (5) and Eq. (6) verbatim.
//!
//! The paper's distributed claims are grounded in two cost models:
//!
//! * **Eq. (5)**, distributed 1-D FFT:
//!   `T_FFT(n) = 5·N·n / (Eff_FFT · FLOPS_peak) + 3·16·N / B_net`
//!   (three all-to-all transposition steps);
//! * **Eq. (6)**, gate-level QFT simulation:
//!   `T_QFT(n) = 4·N·n² / B_mem + log₂(P)·16·N / B_net`
//!   (controlled phase shifts touch a quarter of the state vector,
//!   read+write, 16 bytes per entry ⇒ `4·N·n²` bytes of traffic; only the
//!   Hadamards on the top `log₂ P` qubits communicate).
//!
//! [`MachineModel`] evaluates both for any machine; [`MachineModel::stampede`]
//! reproduces the paper's TACC Stampede constants, and
//! [`MachineModel::calibrate_local`] measures this host so executed runs and
//! modelled runs can be compared on the same plot.

/// Bytes per complex-double amplitude.
pub const BYTES_PER_AMP: f64 = 16.0;

/// Bytes **one rank** sends for a full-slice pairwise exchange — the cost
/// of every non-diagonal gate on a global qubit under per-gate execution:
/// `16·N/P`.
pub fn exchange_bytes_per_rank(n: u32, p: usize) -> f64 {
    BYTES_PER_AMP * (2f64).powi(n as i32) / p as f64
}

/// Bytes **one rank** sends for one batched `k`-slot remap permutation
/// (global↔local qubit relabelling): the `2⁻ᵏ` of the slice whose
/// swapped bits already match the rank stays home, the rest ships —
/// `(1 − 2⁻ᵏ)·16·N/P`, strictly *less* than one pairwise exchange, after
/// which an arbitrarily long run of gates on the remapped qubits is free.
pub fn remap_bytes_per_rank(n: u32, p: usize, k: u32) -> f64 {
    (1.0 - (2f64).powi(-(k as i32))) * BYTES_PER_AMP * (2f64).powi(n as i32) / p as f64
}

/// Hardware constants of one node plus the interconnect.
#[derive(Clone, Copy, Debug)]
pub struct MachineModel {
    /// Peak double-precision FLOPS of one node.
    pub flops_peak_per_node: f64,
    /// FFT efficiency: achieved/peak, "typically 10%–20%" (paper §3.2).
    pub fft_efficiency: f64,
    /// Memory bandwidth of one node, bytes/s.
    pub mem_bw_per_node: f64,
    /// Network injection bandwidth of one node, bytes/s.
    pub net_bw_per_node: f64,
    /// Per-message latency, seconds (sub-dominant in the paper's model;
    /// kept for the executed-mode clock).
    pub latency: f64,
}

impl MachineModel {
    /// The paper's Stampede node: 2× Xeon E5-2680 (2.7 GHz, 8 cores, AVX →
    /// 345.6 GF/node peak), ~20 GF achieved FFT (§4.3), 40 GB/s memory
    /// bandwidth (§4.3), FDR InfiniBand 56 Gb/s = 7 GB/s injection.
    pub fn stampede() -> MachineModel {
        let flops_peak = 2.0 * 8.0 * 2.7e9 * 8.0; // sockets × cores × Hz × flops/cycle
        MachineModel {
            flops_peak_per_node: flops_peak,
            // Calibrated so achieved FFT = 20 GF as reported in §4.3.
            fft_efficiency: 20.0e9 / flops_peak,
            mem_bw_per_node: 40.0e9,
            net_bw_per_node: 7.0e9,
            latency: 1.0e-6,
        }
    }

    /// Achieved FFT FLOPS of one node.
    pub fn fft_flops_achieved(&self) -> f64 {
        self.fft_efficiency * self.flops_peak_per_node
    }

    /// **Eq. (5)**: time of a distributed FFT over `N = 2^n` amplitudes on
    /// `p` nodes. For `p = 1` the three all-to-alls vanish.
    pub fn t_fft(&self, n: u32, p: usize) -> f64 {
        let big_n = (2f64).powi(n as i32);
        let compute = 5.0 * big_n * n as f64 / (self.fft_flops_achieved() * p as f64);
        let comm = if p > 1 {
            3.0 * BYTES_PER_AMP * big_n / (self.net_bw_per_node * p as f64)
        } else {
            0.0
        };
        compute + comm
    }

    /// **Eq. (6)**: time of a gate-level QFT simulation over `N = 2^n`
    /// amplitudes on `p` nodes.
    pub fn t_qft(&self, n: u32, p: usize) -> f64 {
        let big_n = (2f64).powi(n as i32);
        let compute = 4.0 * big_n * (n as f64) * (n as f64) / (self.mem_bw_per_node * p as f64);
        let comm = if p > 1 {
            (p as f64).log2() * BYTES_PER_AMP * big_n / (self.net_bw_per_node * p as f64)
        } else {
            0.0
        };
        compute + comm
    }

    /// Remap-aware variant of **Eq. (6)**: the compute term is unchanged,
    /// but instead of `log₂(P)` full-slice exchanges (one per global
    /// Hadamard), the communication term is **two** batched
    /// `log₂(P)`-slot remap permutations — one bringing all global qubits
    /// local before their non-diagonal run, one re-localising the
    /// evicted victims for their own Hadamards later (the QFT touches
    /// every qubit non-diagonally; the final SWAP network costs nothing,
    /// it is absorbed as qubit relabels) — at `(1 − 1/P)·16·N/P` bytes
    /// per rank each ([`remap_bytes_per_rank`]). For `P ≥ 4` this is
    /// strictly cheaper than Eq. 6's term; at `P = 2` the model breaks
    /// even (the *measured* advantage at `P = 2` comes from the
    /// SWAP-network exchanges Eq. 6 ignores — see the
    /// `fig4_remap_ablation` bench).
    pub fn t_qft_remap(&self, n: u32, p: usize) -> f64 {
        let big_n = (2f64).powi(n as i32);
        let compute = 4.0 * big_n * (n as f64) * (n as f64) / (self.mem_bw_per_node * p as f64);
        let comm = if p > 1 {
            2.0 * remap_bytes_per_rank(n, p, p.trailing_zeros()) / self.net_bw_per_node
        } else {
            0.0
        };
        compute + comm
    }

    /// Modelled emulation speedup `T_QFT / T_FFT` (paper §4.3 discusses its
    /// single-node value `n·FLOPS_achieved/B_mem` and the dip at small `p`).
    pub fn qft_speedup(&self, n: u32, p: usize) -> f64 {
        self.t_qft(n, p) / self.t_fft(n, p)
    }

    /// The paper's closed-form single-node speedup estimate
    /// `n·FLOPS_achieved/B_mem` (§4.3: `28·20/40 = 14`).
    pub fn single_node_speedup_estimate(&self, n: u32) -> f64 {
        n as f64 * self.fft_flops_achieved() / self.mem_bw_per_node
    }

    /// Time for one generic (non-diagonal) gate on `N = 2^n` amplitudes:
    /// full read+write sweep of the state at memory bandwidth.
    pub fn t_general_gate(&self, n: u32, p: usize) -> f64 {
        let big_n = (2f64).powi(n as i32);
        2.0 * BYTES_PER_AMP * big_n / (self.mem_bw_per_node * p as f64)
    }

    /// Time for one pairwise exchange of the whole distributed state
    /// (a Hadamard on a "global" qubit): every node sends its slice.
    pub fn t_exchange(&self, n: u32, p: usize) -> f64 {
        let big_n = (2f64).powi(n as i32);
        BYTES_PER_AMP * big_n / (self.net_bw_per_node * p as f64)
    }

    /// Builds a model from quick measurements on the current host:
    /// memory bandwidth from a copy sweep and FFT flops from a timed
    /// transform. Network bandwidth cannot be measured on one box, so it is
    /// set to `mem_bw / 4` (a typical cluster ratio) — executed-mode runs
    /// use the same number for their simulated clock, keeping comparisons
    /// internally consistent.
    pub fn calibrate_local() -> MachineModel {
        use qcemu_linalg::C64;
        use std::time::Instant;

        // Memory bandwidth: repeated scaled copy over a buffer far larger
        // than cache.
        let len = 1usize << 22; // 64 MiB of C64
        let src = vec![C64::new(1.0, -1.0); len];
        let mut dst = vec![C64::ZERO; len];
        let reps = 4;
        let t0 = Instant::now();
        for r in 0..reps {
            let s = 1.0 + r as f64 * 1e-9;
            for (d, x) in dst.iter_mut().zip(src.iter()) {
                *d = x.scale(s);
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        let bytes = (reps * len) as f64 * 2.0 * BYTES_PER_AMP; // read + write
        let mem_bw = bytes / dt;
        std::hint::black_box(&dst);

        // FFT achieved flops: one warm transform of 2^20.
        let n = 20u32;
        let size = 1usize << n;
        let plan = qcemu_fft::FftPlan::new(size);
        let mut data = vec![C64::new(1.0, 0.5); size];
        qcemu_fft::fft_inplace(
            &plan,
            &mut data,
            qcemu_fft::Direction::Forward,
            qcemu_fft::Normalization::None,
        );
        let t0 = Instant::now();
        let reps = 4;
        for _ in 0..reps {
            qcemu_fft::fft_inplace(
                &plan,
                &mut data,
                qcemu_fft::Direction::Forward,
                qcemu_fft::Normalization::None,
            );
        }
        let dt = t0.elapsed().as_secs_f64() / reps as f64;
        let fft_flops = 5.0 * size as f64 * n as f64 / dt;
        std::hint::black_box(&data);

        // Treat FFT-achieved as eff × peak with the paper's "typical" 15%.
        let eff = 0.15;
        MachineModel {
            flops_peak_per_node: fft_flops / eff,
            fft_efficiency: eff,
            mem_bw_per_node: mem_bw,
            net_bw_per_node: mem_bw / 4.0,
            latency: 5.0e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stampede_constants_match_paper() {
        let m = MachineModel::stampede();
        // §4.3: ~20 GF achieved FFT, 40 GB/s memory bandwidth.
        assert!((m.fft_flops_achieved() - 20.0e9).abs() < 1e6);
        assert_eq!(m.mem_bw_per_node, 40.0e9);
    }

    #[test]
    fn paper_single_node_speedup_is_14x_at_28_qubits() {
        // §4.3: "the expected speedup is 28·20/40 = 14".
        let m = MachineModel::stampede();
        let s = m.single_node_speedup_estimate(28);
        assert!((s - 14.0).abs() < 0.1, "estimate {s}");
        // The full model (no comm at p = 1) agrees to ~15%: the ratio of
        // Eq. 6 to Eq. 5 at p = 1 is n·(FFT flops)·(4/5)/B_mem… check it is
        // in the right ballpark.
        let full = m.qft_speedup(28, 1);
        assert!(full > 10.0 && full < 25.0, "model speedup {full}");
    }

    #[test]
    fn speedup_dips_at_small_p_then_recovers() {
        // §4.3: "for 2 and 4 nodes, we expect FFT to communicate more than
        // QFT, resulting in some degradation in speedup".
        let m = MachineModel::stampede();
        let s1 = m.qft_speedup(28, 1);
        let s2 = m.qft_speedup(29, 2); // weak scaling: problem grows with p
        let s256 = m.qft_speedup(36, 256);
        assert!(s2 < s1, "2-node speedup {s2} should dip below 1-node {s1}");
        assert!(
            s256 > s2,
            "large-P speedup {s256} should recover above the 2-node dip {s2}"
        );
    }

    #[test]
    fn comm_ratio_is_log2p_over_3() {
        // §4.3: "the ratio of communication times between QFT and FFT is
        // log2(P)/3".
        let m = MachineModel::stampede();
        for p in [2usize, 4, 8, 64] {
            let n = 30u32;
            let big_n = (2f64).powi(n as i32);
            let qft_comm =
                (p as f64).log2() * BYTES_PER_AMP * big_n / (m.net_bw_per_node * p as f64);
            let fft_comm = 3.0 * BYTES_PER_AMP * big_n / (m.net_bw_per_node * p as f64);
            assert!((qft_comm / fft_comm - (p as f64).log2() / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weak_scaling_times_grow_with_communication() {
        // Under weak scaling (N/P fixed) Eq. 5/6 predict growing times.
        let m = MachineModel::stampede();
        let t28 = m.t_fft(28, 1);
        let t32 = m.t_fft(32, 16);
        assert!(
            t32 > t28,
            "weak-scaling FFT time should degrade: {t28} vs {t32}"
        );
        let q28 = m.t_qft(28, 1);
        let q36 = m.t_qft(36, 256);
        assert!(q36 > q28);
    }

    #[test]
    fn speedup_range_matches_paper_claims() {
        // Paper §4.3: "a substantial 6−15× speedup due to emulation" over
        // the 28–36 qubit weak-scaling sweep.
        let m = MachineModel::stampede();
        for (n, p) in [(28u32, 1usize), (30, 4), (32, 16), (34, 64), (36, 256)] {
            let s = m.qft_speedup(n, p);
            assert!(
                s > 4.0 && s < 25.0,
                "n={n}, p={p}: speedup {s} out of range"
            );
        }
    }

    #[test]
    fn gate_and_exchange_times_positive_and_scale() {
        let m = MachineModel::stampede();
        assert!(m.t_general_gate(30, 1) > m.t_general_gate(30, 2));
        assert!(m.t_exchange(30, 2) > 0.0);
    }

    #[test]
    fn remap_bytes_undercut_exchange_bytes() {
        for (p, k) in [(2usize, 1u32), (4, 2), (8, 3), (256, 8)] {
            let n = 30;
            let remap = remap_bytes_per_rank(n, p, k);
            let exch = exchange_bytes_per_rank(n, p);
            assert!(
                remap < exch,
                "one remap ({remap}) must cost less than one exchange ({exch})"
            );
            assert!((remap / exch - (1.0 - 1.0 / (1u64 << k) as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn remap_aware_model_beats_eq6_at_scale() {
        let m = MachineModel::stampede();
        for (n, p) in [(30u32, 4usize), (32, 16), (34, 64), (36, 256)] {
            assert!(
                m.t_qft_remap(n, p) < m.t_qft(n, p),
                "n={n}, P={p}: remap model must undercut Eq. 6"
            );
        }
        // P = 2 breaks even: 2·(1 − 1/2) = 1 = log₂(2) slice-equivalents.
        assert!((m.t_qft_remap(30, 2) - m.t_qft(30, 2)).abs() < 1e-12);
        // P = 1: no communication either way.
        assert_eq!(m.t_qft_remap(28, 1), m.t_qft(28, 1));
    }
}

//! The virtual cluster: rank threads plus a message-passing fabric.
//!
//! Stands in for MPI on Stampede. Each rank is an OS thread; point-to-point
//! messages travel over crossbeam channels. Every communication operation
//! also advances a per-rank *simulated clock* using the α–β model
//! (latency + bytes/bandwidth) of a [`crate::model::MachineModel`], so an
//! executed run reports both real wall time and the time the same traffic
//! would have cost on the modelled interconnect.

use crate::model::MachineModel;
use crossbeam::channel::{unbounded, Receiver, Sender};
use qcemu_linalg::C64;

/// A message: a tagged amplitude payload.
struct Msg {
    from: usize,
    payload: Vec<C64>,
}

/// Per-rank communication endpoint handed to the rank closure.
pub struct Comm {
    rank: usize,
    p: usize,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    /// Out-of-order receive stash, indexed by source rank.
    stash: Vec<Vec<Vec<C64>>>,
    machine: MachineModel,
    sim_comm_time: f64,
    bytes_sent: u64,
    messages_sent: u64,
}

impl Comm {
    /// This rank's id in `0..p`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.p
    }

    /// The machine model driving the simulated clock.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Simulated communication time accumulated so far (seconds on the
    /// modelled interconnect).
    pub fn sim_comm_time(&self) -> f64 {
        self.sim_comm_time
    }

    /// Total payload bytes sent by this rank.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages sent by this rank.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    fn charge(&mut self, bytes: usize) {
        self.sim_comm_time += self.machine.latency + bytes as f64 / self.machine.net_bw_per_node;
        self.bytes_sent += bytes as u64;
        self.messages_sent += 1;
    }

    /// Sends `payload` to rank `to` (non-blocking; channels are unbounded).
    pub fn send(&mut self, to: usize, payload: Vec<C64>) {
        assert!(to < self.p, "send to rank {to} of {}", self.p);
        assert_ne!(to, self.rank, "self-send is a local copy, not a message");
        self.charge(payload.len() * 16);
        self.senders[to]
            .send(Msg {
                from: self.rank,
                payload,
            })
            .expect("rank channel closed");
    }

    /// Receives the next message from rank `from`, buffering out-of-order
    /// arrivals from other ranks.
    pub fn recv(&mut self, from: usize) -> Vec<C64> {
        assert!(from < self.p);
        loop {
            if let Some(payload) = self.stash[from].pop() {
                return payload;
            }
            let msg = self.receiver.recv().expect("rank channel closed");
            if msg.from == from {
                return msg.payload;
            }
            // LIFO stash per source preserves per-pair FIFO order because
            // we only push when the head is not the requested source and
            // pop in reverse — store FIFO instead:
            self.stash[msg.from].insert(0, msg.payload);
        }
    }

    /// Bidirectional exchange with a partner rank: send ours, return theirs.
    pub fn exchange(&mut self, partner: usize, payload: Vec<C64>) -> Vec<C64> {
        self.send(partner, payload);
        self.recv(partner)
    }

    /// Batched pairwise exchange — the building block of an all-to-all
    /// *permutation*: every `(partner, payload)` chunk is sent first (the
    /// channels are unbounded, so no ordering can deadlock), then one
    /// payload is received from each of the same partners. The caller must
    /// be part of a symmetric pattern — each listed partner is itself
    /// sending this rank exactly one chunk in the same collective — which
    /// is what a qubit-remap permutation guarantees: rank `r` exchanges
    /// with exactly the ranks in its XOR-coset over the remapped global
    /// bits. Returns the received payloads keyed by source rank.
    ///
    /// Unlike [`Comm::all_to_all`], uninvolved ranks cost nothing: no
    /// empty messages, no latency charge.
    pub fn exchange_all(&mut self, outgoing: Vec<(usize, Vec<C64>)>) -> Vec<(usize, Vec<C64>)> {
        let partners: Vec<usize> = outgoing.iter().map(|&(to, _)| to).collect();
        debug_assert!(
            {
                let mut p = partners.clone();
                p.sort_unstable();
                p.windows(2).all(|w| w[0] != w[1])
            },
            "exchange_all partners must be distinct"
        );
        for (to, payload) in outgoing {
            self.send(to, payload);
        }
        partners
            .into_iter()
            .map(|from| {
                let payload = self.recv(from);
                (from, payload)
            })
            .collect()
    }

    /// All-to-all: `chunks[i]` goes to rank `i`; returns what every rank
    /// sent to us (index by source rank). `chunks[self]` is moved through
    /// untouched at zero modelled cost.
    pub fn all_to_all(&mut self, mut chunks: Vec<Vec<C64>>) -> Vec<Vec<C64>> {
        assert_eq!(chunks.len(), self.p, "all_to_all needs one chunk per rank");
        let mut out: Vec<Vec<C64>> = (0..self.p).map(|_| Vec::new()).collect();
        out[self.rank] = std::mem::take(&mut chunks[self.rank]);
        for off in 1..self.p {
            let to = (self.rank + off) % self.p;
            self.send(to, std::mem::take(&mut chunks[to]));
        }
        for off in 1..self.p {
            let from = (self.rank + self.p - off) % self.p;
            out[from] = self.recv(from);
        }
        out
    }

    /// Barrier: exchange empty messages with every other rank.
    pub fn barrier(&mut self) {
        let empties: Vec<Vec<C64>> = (0..self.p).map(|_| Vec::new()).collect();
        let _ = self.all_to_all(empties);
    }
}

/// Statistics returned for each rank after a [`run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RankStats {
    /// Simulated (modelled) communication seconds.
    pub sim_comm_time: f64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Messages sent.
    pub messages_sent: u64,
}

/// Runs `f(comm)` on `p` rank threads and collects each rank's result plus
/// its communication statistics. `p` must be a power of two (state-vector
/// distribution slices qubits).
pub fn run<T, F>(p: usize, machine: MachineModel, f: F) -> Vec<(T, RankStats)>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert!(
        p >= 1 && p.is_power_of_two(),
        "rank count must be a power of two"
    );
    let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(p);
    let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(p);
    for _ in 0..p {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(Some(r));
    }

    let f = &f;
    let senders = &senders;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, recv_slot) in receivers.iter_mut().enumerate() {
            let receiver = recv_slot.take().expect("receiver already taken");
            let machine_copy = machine;
            handles.push(scope.spawn(move || {
                let mut comm = Comm {
                    rank,
                    p,
                    senders: senders.clone(),
                    receiver,
                    stash: (0..p).map(|_| Vec::new()).collect(),
                    machine: machine_copy,
                    sim_comm_time: 0.0,
                    bytes_sent: 0,
                    messages_sent: 0,
                };
                let result = f(&mut comm);
                (
                    result,
                    RankStats {
                        sim_comm_time: comm.sim_comm_time,
                        bytes_sent: comm.bytes_sent,
                        messages_sent: comm.messages_sent,
                    },
                )
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcemu_linalg::c64;

    fn machine() -> MachineModel {
        MachineModel::stampede()
    }

    #[test]
    fn single_rank_runs_without_comm() {
        let results = run(1, machine(), |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            42usize
        });
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, 42);
        assert_eq!(results[0].1.bytes_sent, 0);
    }

    #[test]
    fn ring_pass_delivers_in_order() {
        let results = run(4, machine(), |comm| {
            let r = comm.rank();
            let next = (r + 1) % 4;
            let prev = (r + 3) % 4;
            comm.send(next, vec![c64(r as f64, 0.0)]);
            let got = comm.recv(prev);
            got[0].re as usize
        });
        for (rank, (got_from, _)) in results.iter().enumerate() {
            assert_eq!(*got_from, (rank + 3) % 4);
        }
    }

    #[test]
    fn exchange_swaps_payloads() {
        let results = run(2, machine(), |comm| {
            let mine = vec![c64(comm.rank() as f64 + 1.0, 0.0); 8];
            let theirs = comm.exchange(1 - comm.rank(), mine);
            theirs[0].re
        });
        assert_eq!(results[0].0, 2.0);
        assert_eq!(results[1].0, 1.0);
    }

    #[test]
    fn all_to_all_routes_correctly() {
        let p = 4;
        let results = run(p, machine(), move |comm| {
            // Rank r sends value 10·r + dest to each dest.
            let chunks: Vec<Vec<C64>> = (0..p)
                .map(|dest| vec![c64((10 * comm.rank() + dest) as f64, 0.0)])
                .collect();
            let received = comm.all_to_all(chunks);
            (0..p)
                .map(|src| received[src][0].re as usize)
                .collect::<Vec<_>>()
        });
        for (rank, (vals, _)) in results.iter().enumerate() {
            for (src, &v) in vals.iter().enumerate() {
                assert_eq!(v, 10 * src + rank, "rank {rank} from {src}");
            }
        }
    }

    #[test]
    fn exchange_all_routes_cosets() {
        // Every rank exchanges one chunk with each member of its XOR coset
        // {rank^1, rank^2, rank^3} — the pattern a 2-slot remap generates.
        let results = run(4, machine(), |comm| {
            let me = comm.rank();
            let outgoing: Vec<(usize, Vec<C64>)> = (1..4)
                .map(|x| (me ^ x, vec![c64((10 * me + (me ^ x)) as f64, 0.0)]))
                .collect();
            let received = comm.exchange_all(outgoing);
            let mut got: Vec<(usize, usize)> = received
                .into_iter()
                .map(|(from, payload)| (from, payload[0].re as usize))
                .collect();
            got.sort_unstable();
            got
        });
        for (rank, (got, stats)) in results.iter().enumerate() {
            for &(from, v) in got {
                assert_eq!(v, 10 * from + rank, "rank {rank} from {from}");
            }
            assert_eq!(got.len(), 3);
            assert_eq!(stats.messages_sent, 3);
            assert_eq!(stats.bytes_sent, 3 * 16);
        }
    }

    #[test]
    fn out_of_order_receive_is_buffered() {
        // Rank 0 receives from 2 then 1, while both send immediately.
        let results = run(4, machine(), |comm| match comm.rank() {
            0 => {
                let a = comm.recv(2);
                let b = comm.recv(1);
                (a[0].re, b[0].re)
            }
            1 => {
                comm.send(0, vec![c64(1.0, 0.0)]);
                (0.0, 0.0)
            }
            2 => {
                comm.send(0, vec![c64(2.0, 0.0)]);
                (0.0, 0.0)
            }
            _ => (0.0, 0.0),
        });
        assert_eq!(results[0].0, (2.0, 1.0));
    }

    #[test]
    fn fifo_order_per_pair() {
        let results = run(2, machine(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, vec![c64(1.0, 0.0)]);
                comm.send(1, vec![c64(2.0, 0.0)]);
                comm.send(1, vec![c64(3.0, 0.0)]);
                vec![]
            } else {
                let a = comm.recv(0)[0].re;
                let b = comm.recv(0)[0].re;
                let c = comm.recv(0)[0].re;
                vec![a, b, c]
            }
        });
        assert_eq!(results[1].0, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn simulated_clock_charges_alpha_beta() {
        let m = machine();
        let results = run(2, m, |comm| {
            if comm.rank() == 0 {
                comm.send(1, vec![C64::ZERO; 1000]);
            } else {
                let _ = comm.recv(0);
            }
            comm.sim_comm_time()
        });
        let expect = m.latency + 16_000.0 / m.net_bw_per_node;
        assert!(
            (results[0].0 - expect).abs() < 1e-12,
            "rank 0 clock {}",
            results[0].0
        );
        assert_eq!(results[1].0, 0.0, "receiver pays nothing in this model");
        assert_eq!(results[0].1.bytes_sent, 16_000);
        assert_eq!(results[0].1.messages_sent, 1);
    }

    #[test]
    fn barrier_completes() {
        let results = run(8, machine(), |comm| {
            comm.barrier();
            comm.rank()
        });
        assert_eq!(results.len(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_ranks() {
        let _ = run(3, machine(), |_| ());
    }
}

//! Executed-mode weak-scaling drivers for the Fig. 3 / Fig. 4 benchmarks.
//!
//! Each driver runs the real distributed computation on the virtual
//! cluster (threads as ranks) and reports wall-clock time together with
//! the simulated-interconnect communication time, so the bench harness can
//! print both an executed series (reduced scale) and a modelled series
//! (paper scale, via [`crate::model::MachineModel`]).

use crate::comm::{run, Comm};
use crate::dist_fft::distributed_fft;
use crate::dist_state::{CommPolicy, DistributedState};
use crate::model::MachineModel;
use qcemu_fft::{Direction, Normalization};
use qcemu_linalg::C64;
use qcemu_sim::circuits::qft::qft_circuit;
use qcemu_sim::FusionPolicy;
use std::time::Instant;

/// Result of one executed distributed run.
///
/// **Bytes sent** (not exchange count) is the accounted communication
/// quantity: the remap path ships *partial* slices (and controlled gates
/// ship only their selected subsets), so counting exchanges would
/// misrepresent traffic. Exchange/remap counts are kept as mechanism
/// indicators.
#[derive(Clone, Copy, Debug)]
pub struct DistRunReport {
    /// Total qubits.
    pub n_qubits: usize,
    /// Rank count.
    pub p: usize,
    /// Maximum per-rank wall time, seconds (includes thread-contention
    /// noise — ranks share this machine's cores).
    pub max_wall_s: f64,
    /// Maximum per-rank simulated communication time, seconds.
    pub max_sim_comm_s: f64,
    /// Total bytes sent across all ranks — the primary accounted quantity.
    pub total_bytes: u64,
    /// Maximum bytes sent by any single rank (what the α–β clock charges).
    pub max_rank_bytes: u64,
    /// Maximum per-rank pairwise exchange count (0 for FFT runs, which use
    /// all-to-alls instead).
    pub max_exchanges: u64,
    /// Maximum per-rank batched remap permutations (communication-avoiding
    /// path only).
    pub max_remaps: u64,
}

fn collect(
    n_qubits: usize,
    p: usize,
    results: Vec<((f64, u64, u64), crate::comm::RankStats)>,
) -> DistRunReport {
    let mut report = DistRunReport {
        n_qubits,
        p,
        max_wall_s: 0.0,
        max_sim_comm_s: 0.0,
        total_bytes: 0,
        max_rank_bytes: 0,
        max_exchanges: 0,
        max_remaps: 0,
    };
    for ((wall, exchanges, remaps), stats) in results {
        report.max_wall_s = report.max_wall_s.max(wall);
        report.max_sim_comm_s = report.max_sim_comm_s.max(stats.sim_comm_time);
        report.total_bytes += stats.bytes_sent;
        report.max_rank_bytes = report.max_rank_bytes.max(stats.bytes_sent);
        report.max_exchanges = report.max_exchanges.max(exchanges);
        report.max_remaps = report.max_remaps.max(remaps);
    }
    report
}

/// Gate-level QFT simulation of `n_local + log₂(p)` qubits on `p` ranks,
/// per-gate exchange execution (the Fig. 4 baseline pair).
pub fn run_qft_simulation(
    n_local: usize,
    p: usize,
    policy: CommPolicy,
    machine: MachineModel,
) -> DistRunReport {
    let n_qubits = n_local + p.trailing_zeros() as usize;
    let circuit = qft_circuit(n_qubits);
    let circuit = &circuit;
    let results = run(p, machine, move |comm: &mut Comm| {
        let mut ds = DistributedState::zero_state(n_qubits, comm);
        comm.barrier();
        let t0 = Instant::now();
        ds.apply_circuit(circuit, comm, policy);
        let wall = t0.elapsed().as_secs_f64();
        (wall, ds.exchange_count(), ds.remap_count())
    });
    collect(n_qubits, p, results)
}

/// Gate-level QFT simulation through the communication-avoiding planned
/// path: qubit remapping, plus gate fusion when `fusion` is greedy (the
/// window is clamped to the local qubit count automatically).
pub fn run_qft_remap(
    n_local: usize,
    p: usize,
    fusion: FusionPolicy,
    machine: MachineModel,
) -> DistRunReport {
    let n_qubits = n_local + p.trailing_zeros() as usize;
    let circuit = qft_circuit(n_qubits);
    let circuit = &circuit;
    let results = run(p, machine, move |comm: &mut Comm| {
        let mut ds = DistributedState::zero_state(n_qubits, comm);
        comm.barrier();
        let t0 = Instant::now();
        ds.run_circuit(circuit, &fusion, comm);
        let wall = t0.elapsed().as_secs_f64();
        (wall, ds.exchange_count(), ds.remap_count())
    });
    collect(n_qubits, p, results)
}

/// Emulated QFT — distributed FFT — of `n_local + log₂(p)` qubits.
pub fn run_qft_emulation(n_local: usize, p: usize, machine: MachineModel) -> DistRunReport {
    let n_qubits = n_local + p.trailing_zeros() as usize;
    let results = run(p, machine, move |comm: &mut Comm| {
        let mut local = vec![C64::ZERO; 1usize << n_local];
        if comm.rank() == 0 {
            local[0] = C64::ONE;
        }
        comm.barrier();
        let t0 = Instant::now();
        distributed_fft(
            &mut local,
            n_qubits,
            Direction::Inverse,
            Normalization::Sqrt,
            comm,
        );
        let wall = t0.elapsed().as_secs_f64();
        (wall, 0u64, 0u64)
    });
    collect(n_qubits, p, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qft_simulation_driver_reports() {
        let r = run_qft_simulation(6, 4, CommPolicy::Specialized, MachineModel::stampede());
        assert_eq!(r.n_qubits, 8);
        assert_eq!(r.p, 4);
        assert!(r.max_wall_s > 0.0);
        assert!(r.total_bytes > 0, "global H gates must communicate");
    }

    #[test]
    fn generic_policy_sends_more_bytes() {
        let spec = run_qft_simulation(6, 4, CommPolicy::Specialized, MachineModel::stampede());
        let gen = run_qft_simulation(6, 4, CommPolicy::Generic, MachineModel::stampede());
        assert!(
            gen.total_bytes > spec.total_bytes,
            "generic {} vs specialised {}",
            gen.total_bytes,
            spec.total_bytes
        );
        assert!(gen.max_exchanges > spec.max_exchanges);
        assert!(gen.max_sim_comm_s > spec.max_sim_comm_s);
    }

    #[test]
    fn emulation_driver_runs() {
        let r = run_qft_emulation(6, 4, MachineModel::stampede());
        assert_eq!(r.n_qubits, 8);
        assert!(r.max_wall_s > 0.0);
        assert!(r.total_bytes > 0, "three all-to-alls");
        assert_eq!(r.max_exchanges, 0);
    }

    #[test]
    fn single_rank_runs_have_no_comm() {
        let sim = run_qft_simulation(8, 1, CommPolicy::Specialized, MachineModel::stampede());
        assert_eq!(sim.total_bytes, 0);
        let emu = run_qft_emulation(8, 1, MachineModel::stampede());
        assert_eq!(emu.total_bytes, 0);
        let remap = run_qft_remap(8, 1, FusionPolicy::greedy(), MachineModel::stampede());
        assert_eq!(remap.total_bytes, 0);
        assert_eq!(remap.max_remaps, 0);
    }

    #[test]
    fn remap_driver_undercuts_per_gate_bytes() {
        for p in [2usize, 4] {
            let per_gate =
                run_qft_simulation(6, p, CommPolicy::Specialized, MachineModel::stampede());
            let remap = run_qft_remap(6, p, FusionPolicy::Disabled, MachineModel::stampede());
            let fused = run_qft_remap(6, p, FusionPolicy::greedy(), MachineModel::stampede());
            assert!(remap.max_remaps > 0, "P={p}: planned path must remap");
            assert!(
                remap.total_bytes < per_gate.total_bytes,
                "P={p}: remap bytes {} vs per-gate {}",
                remap.total_bytes,
                per_gate.total_bytes
            );
            assert!(
                fused.total_bytes < per_gate.total_bytes,
                "P={p}: remap+fusion bytes {} vs per-gate {}",
                fused.total_bytes,
                per_gate.total_bytes
            );
            assert!(per_gate.max_rank_bytes > 0);
        }
    }
}

//! # qcemu-baselines
//!
//! Re-implementations of the two simulators the paper benchmarks against in
//! §4.5 (Figs. 4–6), built over the same state-vector memory layout as
//! `qcemu-sim` so that performance differences isolate *algorithmic
//! choices*, not incidental engineering:
//!
//! * [`qhipster`] — qHiPSTER-like: generic dense kernels for every gate,
//!   full-state sweeps, multi-threaded; its distributed analogue is
//!   `qcemu_cluster::CommPolicy::Generic` (exchange on every global-target
//!   gate, diagonal or not);
//! * [`liquid`] — LIQUi|⟩-like: boxed gate objects carrying explicit
//!   matrices (a CNOT is a 4×4), generic gather/scatter application,
//!   single-threaded, with an optional gate-fusion optimiser.
//!
//! Both are validated against `qcemu-sim` for state-level agreement; the
//! bench harness (`qcemu-bench`) reproduces the paper's relative timings.

pub mod liquid;
pub mod qhipster;

pub use liquid::{apply_object, embed, fuse, gate_to_object, GateObject, LiquidSim};
pub use qhipster::QhipsterSim;

//! qHiPSTER-like baseline simulator (paper ref. \[21\]).
//!
//! Algorithmically faithful to a *generic* high-performance simulator: one
//! dense 2×2 butterfly kernel for every single-qubit gate and one
//! predicate-checked controlled kernel for every controlled gate —
//! no diagonal/permutation specialisation, no control-compressed index
//! enumeration. Multi-threaded like the original (OpenMP there, rayon
//! here). The performance gap to `qcemu-sim` isolates exactly the
//! structure-exploiting optimisations the paper credits its simulator with
//! (§4.5, Figs. 5 and 6).

use qcemu_linalg::C64;
use qcemu_sim::{Circuit, Gate, Mat2, StateVector};
use rayon::prelude::*;

/// State sizes below this run serially.
const PAR_MIN: usize = 1 << 15;

/// The qHiPSTER-like simulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct QhipsterSim;

impl QhipsterSim {
    /// Creates the simulator.
    pub fn new() -> QhipsterSim {
        QhipsterSim
    }

    /// Runs a circuit on a state vector.
    pub fn run(&self, circuit: &Circuit, state: &mut StateVector) {
        assert!(circuit.n_qubits() <= state.n_qubits());
        for gate in circuit.gates() {
            self.apply(gate, state);
        }
    }

    /// Applies one gate with the generic kernels.
    pub fn apply(&self, gate: &Gate, state: &mut StateVector) {
        gate.validate(state.n_qubits())
            .unwrap_or_else(|e| panic!("invalid gate: {e}"));
        match gate {
            Gate::Unary {
                op,
                target,
                controls,
            } => {
                let m = op.matrix(); // dense matrix for EVERY op, diagonal or not
                generic_pairs(state.amplitudes_mut(), *target, controls, &m);
            }
            Gate::Swap { a, b, controls } => {
                // Generic simulators express SWAP through CNOTs.
                let mk = |c: usize, t: usize| {
                    let mut ctl = controls.clone();
                    ctl.push(c);
                    Gate::Unary {
                        op: qcemu_sim::GateOp::X,
                        target: t,
                        controls: ctl,
                    }
                };
                self.apply(&mk(*a, *b), state);
                self.apply(&mk(*b, *a), state);
                self.apply(&mk(*a, *b), state);
            }
        }
    }
}

/// Pointer wrapper for provably disjoint parallel writes (same argument as
/// in `qcemu_sim::kernels`: the pair enumeration is injective).
#[derive(Copy, Clone)]
struct StatePtr(*mut C64);
// SAFETY: used only by `generic_pairs`, whose index pairs are disjoint.
unsafe impl Send for StatePtr {}
unsafe impl Sync for StatePtr {}

/// Enumerates **every** amplitude pair of the target qubit (no control
/// compression) and applies the dense butterfly where the control predicate
/// holds — the generic simulator's access pattern: the whole state vector
/// is read for every gate.
fn generic_pairs(state: &mut [C64], target: usize, controls: &[usize], m: &Mat2) {
    let n = state.len();
    let half = n / 2;
    let tbit = 1usize << target;
    let cmask = controls.iter().fold(0usize, |acc, &c| acc | (1usize << c));
    let low_mask = tbit - 1;
    let m = *m;

    let body = move |k: usize, a: &mut C64, b: &mut C64, i0: usize| {
        let _ = k;
        if i0 & cmask == cmask {
            let x = *a;
            let y = *b;
            *a = m[0][0] * x + m[0][1] * y;
            *b = m[1][0] * x + m[1][1] * y;
        }
    };

    if n >= PAR_MIN && rayon::current_num_threads() > 1 {
        let ptr = StatePtr(state.as_mut_ptr());
        (0..half).into_par_iter().for_each(|k| {
            let p = &ptr;
            let i0 = ((k & !low_mask) << 1) | (k & low_mask);
            // SAFETY: k ↦ i0 is injective with target bit clear; pairs are
            // disjoint (see `qcemu_sim::kernels`).
            unsafe {
                body(k, &mut *p.0.add(i0), &mut *p.0.add(i0 | tbit), i0);
            }
        });
    } else {
        for k in 0..half {
            let i0 = ((k & !low_mask) << 1) | (k & low_mask);
            let (lo, hi) = state.split_at_mut(i0 | tbit);
            body(k, &mut lo[i0], &mut hi[0], i0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcemu_sim::circuits::{entangle_circuit, qft_circuit, tfim_trotter_step, TfimParams};
    use qcemu_sim::GateOp;

    fn check_against_reference(circuit: &Circuit, n: usize) {
        let mut reference = StateVector::basis_state(n, 1 % (1 << n));
        reference.apply_circuit(circuit);
        let mut baseline = StateVector::basis_state(n, 1 % (1 << n));
        QhipsterSim::new().run(circuit, &mut baseline);
        assert!(
            baseline.max_diff_up_to_phase(&reference) < 1e-10,
            "qHiPSTER-like diverges from reference: {}",
            baseline.max_diff_up_to_phase(&reference)
        );
    }

    #[test]
    fn matches_reference_on_qft() {
        for n in [2usize, 5, 8] {
            check_against_reference(&qft_circuit(n), n);
        }
    }

    #[test]
    fn matches_reference_on_entangle() {
        check_against_reference(&entangle_circuit(9), 9);
    }

    #[test]
    fn matches_reference_on_tfim() {
        check_against_reference(&tfim_trotter_step(6, TfimParams::default()), 6);
    }

    #[test]
    fn matches_reference_on_mixed_gate_zoo() {
        let mut c = Circuit::new(6);
        c.h(0)
            .x(1)
            .y(2)
            .z(3)
            .rz(4, 0.37)
            .rx(5, -0.9)
            .cnot(0, 5)
            .cphase(1, 4, 1.234)
            .toffoli(0, 1, 2)
            .swap(2, 5)
            .push(Gate::controlled(GateOp::H, 3, 0));
        check_against_reference(&c, 6);
    }

    #[test]
    fn parallel_path_matches_reference() {
        // 16 qubits exceeds PAR_MIN → rayon branch runs.
        check_against_reference(&qft_circuit(16), 16);
    }

    #[test]
    fn norm_preserved() {
        let mut sv = StateVector::uniform_superposition(10);
        QhipsterSim::new().run(&qft_circuit(10), &mut sv);
        assert!((sv.norm() - 1.0).abs() < 1e-10);
    }
}

//! LIQUi|⟩-like baseline simulator (paper ref. \[7\]).
//!
//! Models the architecture of a language-level simulator: every gate is a
//! first-class *object* carrying a dense matrix over its participating
//! qubits (controls included — a CNOT is a 4×4 matrix), applied by a
//! generic gather/apply/scatter routine, single-threaded. An optional
//! fusion pass mimics LIQUi|⟩'s circuit optimiser by multiplying adjacent
//! gates into larger unitaries (up to a qubit cap) before execution.
//!
//! The point is architectural fidelity, not disrespect: this is what a
//! flexible, gate-object-centric design costs relative to the paper's
//! structure-specialised kernels (Figs. 5 and 6 show ~5–15×).

use qcemu_linalg::{CMatrix, C64};
use qcemu_sim::{Circuit, Gate, StateVector};

/// The LIQUiD-like simulator.
#[derive(Clone, Copy, Debug)]
pub struct LiquidSim {
    /// Fuse adjacent gates into unitaries over at most
    /// [`LiquidSim::MAX_FUSED_QUBITS`] qubits before applying.
    pub fusion: bool,
}

impl Default for LiquidSim {
    fn default() -> Self {
        LiquidSim { fusion: true }
    }
}

/// A gate lowered to a dense matrix over an explicit qubit list.
#[derive(Clone, Debug)]
pub struct GateObject {
    /// Participating qubits, LSB of the matrix index first.
    pub qubits: Vec<usize>,
    /// `2^k × 2^k` unitary.
    pub matrix: CMatrix,
}

impl LiquidSim {
    /// Fusion cap: unitaries never grow beyond this many qubits.
    pub const MAX_FUSED_QUBITS: usize = 3;

    /// Creates the simulator (with fusion enabled).
    pub fn new() -> LiquidSim {
        LiquidSim::default()
    }

    /// Creates the simulator without the fusion pass.
    pub fn without_fusion() -> LiquidSim {
        LiquidSim { fusion: false }
    }

    /// Runs a circuit.
    pub fn run(&self, circuit: &Circuit, state: &mut StateVector) {
        assert!(circuit.n_qubits() <= state.n_qubits());
        let mut objects: Vec<GateObject> = circuit.gates().iter().map(gate_to_object).collect();
        if self.fusion {
            objects = fuse(objects, Self::MAX_FUSED_QUBITS);
        }
        for obj in &objects {
            apply_object(state, obj);
        }
    }
}

/// Lowers a [`Gate`] to a dense matrix over its qubit list (controls become
/// explicit identity blocks — the "every gate is a matrix" world view).
pub fn gate_to_object(gate: &Gate) -> GateObject {
    match gate {
        Gate::Unary {
            op,
            target,
            controls,
        } => {
            // Qubit order: target is bit 0, controls above it.
            let mut qubits = vec![*target];
            qubits.extend_from_slice(controls);
            let k = qubits.len();
            let dim = 1usize << k;
            let m2 = op.matrix();
            let cmask = if k == 1 { 0 } else { ((1usize << k) - 1) & !1 };
            let mut m = CMatrix::identity(dim);
            for col in 0..dim {
                if col & cmask != cmask {
                    continue; // identity outside the all-controls-on block
                }
                let b = col & 1;
                m[(col & !1, col)] = m2[0][b];
                m[(col | 1, col)] = m2[1][b];
            }
            GateObject { qubits, matrix: m }
        }
        Gate::Swap { a, b, controls } => {
            let mut qubits = vec![*a, *b];
            qubits.extend_from_slice(controls);
            let k = qubits.len();
            let dim = 1usize << k;
            let cmask = ((1usize << k) - 1) & !0b11;
            let mut m = CMatrix::zeros(dim, dim);
            for col in 0..dim {
                let row = if col & cmask == cmask {
                    // swap bits 0 and 1
                    let b0 = col & 1;
                    let b1 = (col >> 1) & 1;
                    (col & !0b11) | (b0 << 1) | b1
                } else {
                    col
                };
                m[(row, col)] = C64::ONE;
            }
            GateObject { qubits, matrix: m }
        }
    }
}

/// Embeds `obj` into a larger qubit list (which must contain all of the
/// object's qubits), producing the matrix on the union space.
pub fn embed(obj: &GateObject, union_qubits: &[usize]) -> CMatrix {
    let ku = union_qubits.len();
    let dim = 1usize << ku;
    // position of each object qubit within the union list
    let pos: Vec<usize> = obj
        .qubits
        .iter()
        .map(|q| {
            union_qubits
                .iter()
                .position(|u| u == q)
                .expect("union must contain object qubits")
        })
        .collect();
    let k = obj.qubits.len();
    let mut m = CMatrix::zeros(dim, dim);
    for col in 0..dim {
        // Extract the object's input value from the union index.
        let mut sub_in = 0usize;
        for (j, &p) in pos.iter().enumerate() {
            sub_in |= ((col >> p) & 1) << j;
        }
        let passthrough = {
            let mut mask = col;
            for &p in &pos {
                mask &= !(1usize << p);
            }
            mask
        };
        for sub_out in 0..(1usize << k) {
            let amp = obj.matrix[(sub_out, sub_in)];
            if amp == C64::ZERO {
                continue;
            }
            let mut row = passthrough;
            for (j, &p) in pos.iter().enumerate() {
                row |= ((sub_out >> j) & 1) << p;
            }
            m[(row, col)] = amp;
        }
    }
    m
}

/// Greedy fusion: merge each gate into the previous object when the union
/// of their qubit sets stays within `cap` qubits.
pub fn fuse(objects: Vec<GateObject>, cap: usize) -> Vec<GateObject> {
    let mut out: Vec<GateObject> = Vec::with_capacity(objects.len());
    for obj in objects {
        if let Some(prev) = out.last_mut() {
            let mut union = prev.qubits.clone();
            for q in &obj.qubits {
                if !union.contains(q) {
                    union.push(*q);
                }
            }
            if union.len() <= cap {
                let a = embed(prev, &union);
                let b = embed(&obj, &union);
                // Later gate multiplies from the left.
                let fused = qcemu_linalg::gemm(&b, &a);
                *prev = GateObject {
                    qubits: union,
                    matrix: fused,
                };
                continue;
            }
        }
        out.push(obj);
    }
    out
}

/// Generic single-threaded gather/apply/scatter of a gate object.
pub fn apply_object(state: &mut StateVector, obj: &GateObject) {
    let n_qubits = state.n_qubits();
    let k = obj.qubits.len();
    let dim = 1usize << k;
    assert_eq!(obj.matrix.shape(), (dim, dim));
    let comp: Vec<usize> = (0..n_qubits).filter(|q| !obj.qubits.contains(q)).collect();
    let amps = state.amplitudes_mut();
    let mut gathered = vec![C64::ZERO; dim];
    for c in 0..(1usize << comp.len()) {
        let mut base = 0usize;
        for (j, &q) in comp.iter().enumerate() {
            base |= ((c >> j) & 1) << q;
        }
        for (v, slot) in gathered.iter_mut().enumerate() {
            let mut idx = base;
            for (j, &q) in obj.qubits.iter().enumerate() {
                idx |= ((v >> j) & 1) << q;
            }
            *slot = amps[idx];
        }
        let transformed = obj.matrix.matvec(&gathered);
        for (v, value) in transformed.iter().enumerate() {
            let mut idx = base;
            for (j, &q) in obj.qubits.iter().enumerate() {
                idx |= ((v >> j) & 1) << q;
            }
            amps[idx] = *value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcemu_sim::circuits::{entangle_circuit, qft_circuit, tfim_trotter_step, TfimParams};
    use qcemu_sim::GateOp;

    fn check(circuit: &Circuit, n: usize, sim: LiquidSim) {
        let mut reference = StateVector::basis_state(n, (1 << n) - 1);
        reference.apply_circuit(circuit);
        let mut baseline = StateVector::basis_state(n, (1 << n) - 1);
        sim.run(circuit, &mut baseline);
        assert!(
            baseline.max_diff_up_to_phase(&reference) < 1e-9,
            "LIQUiD-like diverges: {}",
            baseline.max_diff_up_to_phase(&reference)
        );
    }

    #[test]
    fn cnot_object_is_the_textbook_matrix() {
        let obj = gate_to_object(&Gate::cnot(5, 2));
        // Qubit order [target=2, control=5]: matrix index bit0 = target.
        // Control = bit 1: columns 2, 3 flip the target.
        assert_eq!(obj.qubits, vec![2, 5]);
        let m = &obj.matrix;
        assert_eq!(m[(0, 0)], C64::ONE);
        assert_eq!(m[(1, 1)], C64::ONE);
        assert_eq!(m[(3, 2)], C64::ONE);
        assert_eq!(m[(2, 3)], C64::ONE);
        assert!(m.is_unitary(1e-12));
    }

    #[test]
    fn toffoli_object_is_8x8_permutation() {
        let obj = gate_to_object(&Gate::toffoli(1, 2, 0));
        assert_eq!(obj.matrix.shape(), (8, 8));
        assert!(obj.matrix.is_unitary(1e-12));
        // Both controls on: |011⟩ ↔ |111⟩ in (t,c1,c2) bit order → indices
        // 6 and 7 swap.
        assert_eq!(obj.matrix[(7, 6)], C64::ONE);
        assert_eq!(obj.matrix[(6, 7)], C64::ONE);
        assert_eq!(obj.matrix[(0, 0)], C64::ONE);
    }

    #[test]
    fn matches_reference_on_qft_with_and_without_fusion() {
        for n in [2usize, 5, 8] {
            check(&qft_circuit(n), n, LiquidSim::without_fusion());
            check(&qft_circuit(n), n, LiquidSim::new());
        }
    }

    #[test]
    fn matches_reference_on_entangle() {
        check(&entangle_circuit(8), 8, LiquidSim::new());
        check(&entangle_circuit(8), 8, LiquidSim::without_fusion());
    }

    #[test]
    fn matches_reference_on_tfim() {
        check(
            &tfim_trotter_step(5, TfimParams::default()),
            5,
            LiquidSim::new(),
        );
    }

    #[test]
    fn matches_reference_on_gate_zoo() {
        let mut c = Circuit::new(5);
        c.h(0)
            .y(1)
            .rz(2, 0.4)
            .cphase(0, 3, 0.9)
            .toffoli(0, 1, 4)
            .swap(1, 3);
        c.push(Gate::controlled(GateOp::Ry(0.3), 4, 2));
        c.push(Gate::Swap {
            a: 0,
            b: 2,
            controls: vec![3],
        });
        check(&c, 5, LiquidSim::new());
        check(&c, 5, LiquidSim::without_fusion());
    }

    #[test]
    fn fusion_reduces_object_count() {
        let objects: Vec<GateObject> = qft_circuit(6).gates().iter().map(gate_to_object).collect();
        let before = objects.len();
        let after = fuse(objects, LiquidSim::MAX_FUSED_QUBITS).len();
        assert!(
            after < before,
            "fusion should merge gates: {before} → {after}"
        );
    }

    #[test]
    fn fused_objects_stay_unitary() {
        let objects: Vec<GateObject> = qft_circuit(5).gates().iter().map(gate_to_object).collect();
        for obj in fuse(objects, 3) {
            assert!(obj.matrix.is_unitary(1e-9), "fused object lost unitarity");
        }
    }

    #[test]
    fn embed_into_superset_preserves_action() {
        // Embedding CNOT(0→1) into qubits [1, 0, 2] then applying must equal
        // direct application.
        let obj = gate_to_object(&Gate::cnot(0, 1));
        let union = vec![1usize, 0, 2];
        let big = embed(&obj, &union);
        assert!(big.is_unitary(1e-12));
        let big_obj = GateObject {
            qubits: union,
            matrix: big,
        };
        let mut a = StateVector::uniform_superposition(3);
        let mut b = a.clone();
        a.apply(&Gate::cnot(0, 1));
        apply_object(&mut b, &big_obj);
        assert!(a.max_diff_up_to_phase(&b) < 1e-12);
    }
}

//! Property tests for the wire format: arbitrary programs (gate zoo ×
//! QFT × classical arithmetic × rotations) must round-trip losslessly,
//! and corrupted or truncated frames must surface typed errors — never
//! panics, never silent acceptance.

use proptest::prelude::*;
use qcemu_linalg::c64;
use qcemu_serve::wire::{
    self, FrameKind, SubmitOptions, WireError, WireOp, WireProgram, WireRegister,
};
use qcemu_sim::{Gate, GateOp};

/// Fixed register layout every generated program uses: three 2-qubit
/// arithmetic registers plus a 1-qubit rotation target (7 qubits).
fn registers() -> Vec<WireRegister> {
    vec![
        WireRegister {
            name: "a".into(),
            len: 2,
        },
        WireRegister {
            name: "b".into(),
            len: 2,
        },
        WireRegister {
            name: "c".into(),
            len: 2,
        },
        WireRegister {
            name: "ind".into(),
            len: 1,
        },
    ]
}

const N_QUBITS: usize = 7;

/// Strategy: one gate from the full zoo (Pauli/Clifford, parameterised
/// rotations, a dense U, controls, swaps).
fn gate() -> impl Strategy<Value = Gate> {
    (
        0..15usize,
        0..N_QUBITS,
        0..N_QUBITS,
        0..N_QUBITS,
        -3.0f64..3.0,
        -1.0f64..1.0,
    )
        .prop_map(|(kind, q1, q2, q3, theta, u)| {
            let b = if q2 == q1 { (q1 + 1) % N_QUBITS } else { q2 };
            let c = if q3 == q1 || q3 == b {
                (b + 1) % N_QUBITS
            } else {
                q3
            };
            let op = match kind {
                0 => GateOp::X,
                1 => GateOp::Y,
                2 => GateOp::Z,
                3 => GateOp::H,
                4 => GateOp::S,
                5 => GateOp::Sdg,
                6 => GateOp::T,
                7 => GateOp::Tdg,
                8 => GateOp::Rx(theta),
                9 => GateOp::Ry(theta),
                10 => GateOp::Rz(theta),
                11 => GateOp::Phase(theta),
                12 => GateOp::U([
                    [c64(u, theta), c64(-theta, u)],
                    [c64(theta, -u), c64(u, -theta)],
                ]),
                _ => GateOp::H,
            };
            match kind {
                13 => Gate::Swap {
                    a: q1,
                    b,
                    controls: vec![c],
                },
                14 => Gate::Unary {
                    op: GateOp::X,
                    target: q1,
                    controls: vec![b, c],
                },
                _ => Gate::Unary {
                    op,
                    target: q1,
                    controls: Vec::new(),
                },
            }
        })
}

/// Strategy: one wire op across the whole op set.
fn op() -> impl Strategy<Value = WireOp> {
    (
        0..10usize,
        0..4u16,
        0..3u16,
        collection::vec(gate(), 1..6),
        -2.0f64..2.0,
        0..64u64,
    )
        .prop_map(|(kind, any_reg, arith_reg, gates, x, value)| match kind {
            0 => WireOp::Gates(gates),
            1 => WireOp::Hadamard(any_reg),
            2 => WireOp::SetConstant(arith_reg, value % 4),
            3 => WireOp::Qft(arith_reg),
            4 => WireOp::InverseQft(arith_reg),
            5 => WireOp::Add {
                a: arith_reg,
                b: (arith_reg + 1) % 3,
            },
            6 => WireOp::Multiply { a: 0, b: 1, c: 2 },
            7 => WireOp::Rotation {
                x: arith_reg,
                target: 3,
                slope: x,
                intercept: -x / 2.0,
            },
            8 => WireOp::MarkValue {
                reg: arith_reg,
                value: value % 4,
                phase: x,
            },
            _ => WireOp::Divide {
                a: 0,
                b: 1,
                q: 2,
                r: 2,
            },
        })
}

fn program() -> impl Strategy<Value = WireProgram> {
    collection::vec(op(), 1..8).prop_map(|ops| WireProgram {
        registers: registers(),
        ops,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn programs_roundtrip_losslessly(prog in program(), shots in 0u32..64, seed in 0u64..1000) {
        let decoded = WireProgram::decode(&prog.encode()).unwrap();
        prop_assert_eq!(&decoded, &prog);

        // And through a full submit frame.
        let options = SubmitOptions { shots, seed, want_amplitudes: seed % 2 == 0 };
        let payload = wire::encode_submit(&prog, &options);
        let mut buf = Vec::new();
        wire::write_frame(&mut buf, FrameKind::Submit, &payload).unwrap();
        let (kind, body) = wire::read_frame(&mut buf.as_slice()).unwrap().unwrap();
        prop_assert_eq!(kind, FrameKind::Submit);
        let (p2, o2) = wire::decode_submit(&body).unwrap();
        prop_assert_eq!(&p2, &prog);
        prop_assert_eq!(o2, options);
    }

    #[test]
    fn truncated_frames_error_instead_of_panicking(prog in program(), frac in 0.0f64..1.0) {
        let payload = wire::encode_submit(&prog, &SubmitOptions::default());
        let mut buf = Vec::new();
        wire::write_frame(&mut buf, FrameKind::Submit, &payload).unwrap();
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        match wire::read_frame(&mut &buf[..cut]) {
            Ok(None) => prop_assert_eq!(cut, 0),
            Ok(Some(_)) => prop_assert!(false, "truncated frame decoded"),
            Err(_) => {}
        }
    }

    #[test]
    fn corrupted_payloads_fail_the_checksum(prog in program(), pos_frac in 0.0f64..1.0, flip in 1u8..255) {
        let payload = wire::encode_submit(&prog, &SubmitOptions::default());
        let mut buf = Vec::new();
        wire::write_frame(&mut buf, FrameKind::Submit, &payload).unwrap();
        // Flip one byte anywhere past the header (payload or checksum):
        // the FNV check must catch it.
        let pos = 8 + ((buf.len() - 9) as f64 * pos_frac) as usize;
        buf[pos] ^= flip;
        prop_assert_eq!(
            wire::read_frame(&mut buf.as_slice()).err(),
            Some(WireError::ChecksumMismatch)
        );
    }

    #[test]
    fn truncated_payload_bodies_error_cleanly(prog in program(), frac in 0.0f64..1.0) {
        // Cut *inside* the payload encoding itself (no frame): the
        // structural decoder must report Truncated/TrailingBytes-class
        // errors, not panic.
        let bytes = prog.encode();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(WireProgram::decode(&bytes[..cut]).is_err());
        }
    }
}

#[test]
fn bad_magic_version_and_kind_are_typed_errors() {
    let payload = wire::encode_submit(
        &WireProgram {
            registers: registers(),
            ops: vec![WireOp::Hadamard(0)],
        },
        &SubmitOptions::default(),
    );
    let mut buf = Vec::new();
    wire::write_frame(&mut buf, FrameKind::Submit, &payload).unwrap();

    let mut bad = buf.clone();
    bad[0] = b'X';
    assert_eq!(
        wire::read_frame(&mut bad.as_slice()).err(),
        Some(WireError::BadMagic)
    );

    let mut bad = buf.clone();
    bad[2] = 9;
    assert_eq!(
        wire::read_frame(&mut bad.as_slice()).err(),
        Some(WireError::BadVersion { got: 9 })
    );

    let mut bad = buf.clone();
    bad[3] = 0x33;
    assert_eq!(
        wire::read_frame(&mut bad.as_slice()).err(),
        Some(WireError::BadKind { got: 0x33 })
    );
}

#[test]
fn declared_lengths_beyond_the_caps_are_rejected() {
    // A payload whose register count claims 65535 entries must fail on
    // the cap, not attempt a 65535-element allocation loop.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&u16::MAX.to_le_bytes());
    assert_eq!(
        WireProgram::decode(&bytes).err(),
        Some(WireError::CapExceeded { what: "registers" })
    );
}

//! Multi-tenant emulation serving: a long-lived daemon around the
//! hybrid emulator.
//!
//! The emulator's planning phase — cost-model lowering, reversible
//! circuit synthesis, gate fusion (paper §3–4) — is structure-determined
//! and often dwarfs the execution of small-to-medium programs. A
//! one-shot CLI pays it on every invocation. This crate amortises it
//! across *tenants*: a daemon ([`EmuServer`]) holds one
//! [`SharedPlanCache`](qcemu_core::SharedPlanCache) for all connections,
//! so N clients sweeping parameters over one program structure trigger
//! exactly one lowering, and structurally identical in-flight requests
//! are coalesced into one batched execution
//! ([`BatchExecutor`](qcemu_core::BatchExecutor)) within a small
//! batching window.
//!
//! The pieces:
//!
//! * [`wire`] — a dependency-free, length-prefixed binary protocol with
//!   checksummed frames; hostile input yields typed errors, never
//!   panics.
//! * [`admission`] — cost-model-driven admission control: fast lane for
//!   cheap jobs, a bounded queue for expensive ones, typed rejections
//!   ([`RejectReason`]) for over-budget, over-width, or overflow.
//! * [`server`] — the daemon: accept loop, worker pool, scheduler with
//!   structure-coalescing, counters ([`StatsSnapshot`]).
//! * [`client`] — a small blocking client used by the tests, the
//!   examples, and the benchmark harness.
//!
//! Run the daemon with the `qcemu-served` binary; the protocol is
//! specified in `docs/SERVING.md`.

pub mod admission;
pub mod client;
pub mod server;
pub mod wire;

pub use admission::{AdmissionPolicy, AdmitLane, RejectReason};
pub use client::{EmuClient, ServeError};
pub use server::{EmuServer, ServerConfig, ServerHandle};
pub use wire::{
    ErrorCode, FrameKind, Lane, RunResult, StatsSnapshot, SubmitOptions, WireError, WireOp,
    WireProgram, WireRegister, WireStepReport,
};

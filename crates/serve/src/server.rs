//! The multi-tenant emulation daemon.
//!
//! One [`EmuServer`] owns a TCP listener, a worker pool built from the
//! standard threading primitives, and — the piece that makes it
//! *multi-tenant* rather than merely concurrent — a single
//! [`SharedPlanCache`] every worker's executor is attached to. Planning
//! (cost-model lowering, reversible-circuit synthesis, gate fusion) is
//! the expensive, structure-determined half of a request; the cache
//! guarantees each program structure pays it **once across all
//! connections**, with concurrent first-requests collapsing to a single
//! lowering (single-flight).
//!
//! Request lifecycle:
//!
//! 1. A connection thread reads a frame, decodes and validates the
//!    program ([`ErrorCode::Malformed`] / [`ErrorCode::InvalidProgram`]
//!    on failure — a bad frame can never take the daemon down).
//! 2. Admission control ([`AdmissionPolicy`]): qubit gate before
//!    planning, then one `plan_structural` (cached), then the
//!    cost gate classifies the job fast/queued or rejects it.
//! 3. The job lands on the scheduler; a worker pops it (fast lane
//!    first), waits out the batching window, and **coalesces** any
//!    structurally identical in-flight jobs into one
//!    [`BatchExecutor`] run — the paper's batched-execution engine put
//!    behind a socket.
//! 4. Results (amplitudes on request, seeded measurement shots, the
//!    per-op [`PlanReport`](qcemu_core::PlanReport) audit, and the
//!    cache/batch provenance flags) stream back on the connection.

use crate::admission::{AdmissionPolicy, AdmitLane, RejectReason};
use crate::wire::{
    self, ErrorCode, FrameKind, Lane, RunResult, StatsSnapshot, SubmitOptions, WireStepReport,
};
use qcemu_core::{BatchExecutor, CostModel, HybridExecutor, QuantumProgram, SharedPlanCache};
use qcemu_sim::measure::sample_shots;
use qcemu_sim::{BatchStateVector, SimConfig, StateVector};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing admitted jobs.
    pub workers: usize,
    /// Admission policy (qubit bound, cost budget, queue bound).
    pub policy: AdmissionPolicy,
    /// How long a worker holds a popped job open for structurally
    /// identical arrivals before executing. Zero disables coalescing.
    pub batch_window: Duration,
    /// Bound on distinct program structures the shared plan cache
    /// retains.
    pub plan_cache_capacity: usize,
    /// Cost model driving both planning and admission. The default is
    /// [`CostModel::default`] for reproducibility; the `qcemu-served`
    /// binary opts into [`CostModel::calibrated`].
    pub model: CostModel,
    /// Gate-level execution configuration shared by all workers.
    pub config: SimConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            policy: AdmissionPolicy::default(),
            batch_window: Duration::from_millis(2),
            plan_cache_capacity: qcemu_core::DEFAULT_PLAN_CACHE_CAPACITY,
            model: CostModel::default(),
            config: SimConfig::fused(qcemu_sim::DEFAULT_MAX_FUSED_QUBITS),
        }
    }
}

/// One admitted job waiting for (or undergoing) execution.
struct Job {
    program: QuantumProgram,
    structure_hash: u64,
    options: SubmitOptions,
    lane: Lane,
    warm: bool,
    reply: mpsc::Sender<Result<RunResult, (ErrorCode, String)>>,
}

struct SchedState {
    fast: VecDeque<Job>,
    queued: VecDeque<Job>,
    shutdown: bool,
}

struct Scheduler {
    state: Mutex<SchedState>,
    work: Condvar,
}

impl Scheduler {
    fn new() -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState {
                fast: VecDeque::new(),
                queued: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        }
    }

    fn queued_depth(&self) -> usize {
        self.state.lock().unwrap().queued.len()
    }

    fn push(&self, job: Job) {
        let mut s = self.state.lock().unwrap();
        match job.lane {
            Lane::Fast => s.fast.push_back(job),
            Lane::Queued => s.queued.push_back(job),
        }
        drop(s);
        self.work.notify_one();
    }

    /// Blocks until a job is available (fast lane first) or shutdown.
    fn pop(&self) -> Option<Job> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(job) = s.fast.pop_front() {
                return Some(job);
            }
            if let Some(job) = s.queued.pop_front() {
                return Some(job);
            }
            if s.shutdown {
                return None;
            }
            s = self.work.wait(s).unwrap();
        }
    }

    /// Removes every waiting job with the given structure hash, both
    /// lanes, preserving arrival order within each lane.
    fn drain_structure(&self, structure_hash: u64) -> Vec<Job> {
        fn split(lane: &mut VecDeque<Job>, structure_hash: u64, out: &mut Vec<Job>) {
            let mut keep = VecDeque::with_capacity(lane.len());
            for job in lane.drain(..) {
                if job.structure_hash == structure_hash {
                    out.push(job);
                } else {
                    keep.push_back(job);
                }
            }
            *lane = keep;
        }
        let mut s = self.state.lock().unwrap();
        let mut out = Vec::new();
        split(&mut s.fast, structure_hash, &mut out);
        split(&mut s.queued, structure_hash, &mut out);
        out
    }

    fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.work.notify_all();
    }
}

/// Internal counters (monotonic, lock-free).
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    served: AtomicU64,
    rejected_qubits: AtomicU64,
    rejected_cost: AtomicU64,
    rejected_queue_full: AtomicU64,
    malformed: AtomicU64,
    exec_failures: AtomicU64,
    fast_lane: AtomicU64,
    queued: AtomicU64,
    batched_requests: AtomicU64,
    batches: AtomicU64,
    in_service: AtomicU64,
}

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

struct Shared {
    sched: Scheduler,
    counters: Counters,
    cache: SharedPlanCache,
    policy: AdmissionPolicy,
    batch_window: Duration,
    executor: HybridExecutor,
    stopping: AtomicBool,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        let c = &self.counters;
        // The execution pool is process-wide (every request's kernels
        // dispatch through it), so its counters are global, not
        // per-daemon — exactly the view a capacity dashboard wants.
        let pool = rayon::pool::stats();
        StatsSnapshot {
            requests: c.requests.load(Ordering::Relaxed),
            served: c.served.load(Ordering::Relaxed),
            rejected_qubits: c.rejected_qubits.load(Ordering::Relaxed),
            rejected_cost: c.rejected_cost.load(Ordering::Relaxed),
            rejected_queue_full: c.rejected_queue_full.load(Ordering::Relaxed),
            malformed: c.malformed.load(Ordering::Relaxed),
            exec_failures: c.exec_failures.load(Ordering::Relaxed),
            fast_lane: c.fast_lane.load(Ordering::Relaxed),
            queued: c.queued.load(Ordering::Relaxed),
            batched_requests: c.batched_requests.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            queue_depth: c.in_service.load(Ordering::Relaxed),
            plan_hits: self.cache.hits() as u64,
            plan_misses: self.cache.misses() as u64,
            plan_evictions: self.cache.evictions() as u64,
            plan_entries: self.cache.len() as u64,
            pool_tasks_dispatched: pool.tasks_dispatched,
            pool_blocks_stolen: pool.blocks_stolen,
            pool_parks: pool.parks,
            pool_wakeups: pool.wakeups,
            pool_peak_workers: pool.peak_workers,
        }
    }
}

/// A bound-but-not-yet-started daemon. [`EmuServer::start`] spawns the
/// accept loop and workers and returns the controlling
/// [`ServerHandle`].
pub struct EmuServer {
    listener: TcpListener,
    config: ServerConfig,
}

/// Handle to a running daemon: address, live counters, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl EmuServer {
    /// Binds the daemon to `addr` (use port 0 for an OS-assigned port).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<EmuServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(EmuServer { listener, config })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawns the accept loop and the worker pool.
    pub fn start(self) -> io::Result<ServerHandle> {
        // Start the process-wide execution pool before the first request
        // arrives: every worker thread's kernels dispatch into this one
        // shared pool, so no request — not even the first — pays worker
        // spawn latency.
        rayon::pool::warm_up();
        let addr = self.listener.local_addr()?;
        let cache = SharedPlanCache::new(self.config.plan_cache_capacity.max(1));
        let executor = HybridExecutor::new()
            .with_model(self.config.model)
            .with_config(self.config.config)
            .with_plan_cache(cache.clone());
        let shared = Arc::new(Shared {
            sched: Scheduler::new(),
            counters: Counters::default(),
            cache,
            policy: self.config.policy,
            batch_window: self.config.batch_window,
            executor,
            stopping: AtomicBool::new(false),
        });

        let workers = (0..self.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            let listener = self.listener;
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            let _ = stream.set_nodelay(true);
                            let shared = Arc::clone(&shared);
                            // Connection threads are detached: they exit
                            // when their client hangs up.
                            thread::spawn(move || {
                                let _ = serve_connection(stream, &shared);
                            });
                        }
                        Err(_) => continue,
                    }
                }
            })
        };

        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

impl ServerHandle {
    /// The daemon's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A consistent-enough snapshot of the daemon counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// The cross-request plan cache (shared by every worker).
    pub fn plan_cache(&self) -> &SharedPlanCache {
        &self.shared.cache
    }

    /// Stops accepting, drains the scheduler, and joins the worker pool.
    /// Jobs still waiting are answered with
    /// [`ErrorCode::ShuttingDown`].
    pub fn shutdown(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.sched.shutdown();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Anything still queued: tell the waiting connections why.
        let mut state = self.shared.sched.state.lock().unwrap();
        let leftovers: Vec<Job> = state
            .fast
            .drain(..)
            .collect::<Vec<_>>()
            .into_iter()
            .chain(state.queued.drain(..))
            .collect();
        drop(state);
        for job in leftovers {
            let _ = job.reply.send(Err((
                ErrorCode::ShuttingDown,
                "daemon is shutting down".into(),
            )));
        }
        // Under QCEMU_POOL_DEBUG, leave a dispatch-counter trace behind
        // (mirrors the QCEMU_CALIB_DEBUG reporting pattern).
        rayon::pool::dump_stats_if_debug();
    }
}

// ---------------------------------------------------------------------------
// Connection handling.
// ---------------------------------------------------------------------------

fn write_error(
    stream: &mut TcpStream,
    code: ErrorCode,
    message: &str,
) -> Result<(), wire::WireError> {
    wire::write_frame(stream, FrameKind::Error, &wire::encode_error(code, message))
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) -> Result<(), wire::WireError> {
    loop {
        let (kind, payload) = match wire::read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean EOF: the client is done.
            Ok(None) => return Ok(()),
            Err(e) => {
                // Framing is lost: answer once, then drop the
                // connection. The daemon itself keeps serving.
                bump(&shared.counters.malformed);
                let _ = write_error(&mut stream, ErrorCode::Malformed, &e.to_string());
                return Err(e);
            }
        };
        match kind {
            FrameKind::GetStats => {
                wire::write_frame(&mut stream, FrameKind::Stats, &shared.snapshot().encode())?;
            }
            FrameKind::Submit => handle_submit(&mut stream, shared, &payload)?,
            // A client must not send server-side kinds.
            FrameKind::Result | FrameKind::Stats | FrameKind::Error => {
                bump(&shared.counters.malformed);
                write_error(
                    &mut stream,
                    ErrorCode::Malformed,
                    "unexpected server-side frame kind",
                )?;
            }
        }
    }
}

fn handle_submit(
    stream: &mut TcpStream,
    shared: &Shared,
    payload: &[u8],
) -> Result<(), wire::WireError> {
    bump(&shared.counters.requests);
    let (wire_program, options) = match wire::decode_submit(payload) {
        Ok(x) => x,
        Err(e) => {
            bump(&shared.counters.malformed);
            return write_error(stream, ErrorCode::Malformed, &e.to_string());
        }
    };
    let program = match wire_program.to_program() {
        Ok(p) => p,
        Err(e) => {
            bump(&shared.counters.malformed);
            return write_error(stream, ErrorCode::InvalidProgram, &e.to_string());
        }
    };

    // Admission, stage 1: the structural qubit gate — before planning,
    // so an oversized program cannot even cost us a lowering.
    if let Err(reason) = shared.policy.qubit_gate(program.n_qubits()) {
        bump(&shared.counters.rejected_qubits);
        return write_error(stream, reason.code(), &reason.to_string());
    }

    // Planning (cached, single-flight): note the warm/cold provenance
    // before the lookup so the response can report it.
    let warm = shared.shared_cache_peek(&program).is_some();
    let plan = shared.executor.plan_structural(&program);

    // Admission, stage 2: the cost gate, on the plan's predicted total.
    let lane = match shared
        .policy
        .admit(plan.total_predicted_s(), shared.sched.queued_depth())
    {
        Ok(AdmitLane::Fast) => {
            bump(&shared.counters.fast_lane);
            Lane::Fast
        }
        Ok(AdmitLane::Queued) => {
            bump(&shared.counters.queued);
            Lane::Queued
        }
        Err(reason) => {
            match reason {
                RejectReason::OverBudget { .. } => bump(&shared.counters.rejected_cost),
                RejectReason::QueueFull { .. } => bump(&shared.counters.rejected_queue_full),
                RejectReason::TooManyQubits { .. } => bump(&shared.counters.rejected_qubits),
            }
            return write_error(stream, reason.code(), &reason.to_string());
        }
    };

    let (tx, rx) = mpsc::channel();
    bump(&shared.counters.in_service);
    shared.sched.push(Job {
        structure_hash: program.structure_hash(),
        program,
        options,
        lane,
        warm,
        reply: tx,
    });
    let outcome = rx.recv().unwrap_or_else(|_| {
        Err((
            ErrorCode::ShuttingDown,
            "daemon stopped before the job ran".into(),
        ))
    });
    shared.counters.in_service.fetch_sub(1, Ordering::Relaxed);
    match outcome {
        Ok(result) => wire::write_frame(stream, FrameKind::Result, &result.encode()),
        Err((code, message)) => write_error(stream, code, &message),
    }
}

impl Shared {
    fn shared_cache_peek(
        &self,
        program: &QuantumProgram,
    ) -> Option<std::sync::Arc<qcemu_core::ExecutionPlan>> {
        self.cache.peek(
            program.structure_hash(),
            self.executor.model(),
            self.executor.sim_config(),
            None,
        )
    }
}

// ---------------------------------------------------------------------------
// Workers.
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.sched.pop() {
        // Coalescing: give structurally identical in-flight requests one
        // batching window to arrive, then drain them all.
        let mut batch = vec![job];
        if !shared.batch_window.is_zero() {
            let mut more = shared.sched.drain_structure(batch[0].structure_hash);
            if more.is_empty() {
                thread::sleep(shared.batch_window);
                more = shared.sched.drain_structure(batch[0].structure_hash);
            }
            batch.extend(more);
        }
        execute_batch(shared, batch);
    }
}

fn execute_batch(shared: &Shared, batch: Vec<Job>) {
    let n = batch.len();
    match catch_unwind(AssertUnwindSafe(|| run_batch(shared, &batch))) {
        Ok(Ok(results)) => {
            // Counters first, replies second: a client that reads stats
            // right after its result arrives must see this batch counted.
            shared
                .counters
                .served
                .fetch_add(n as u64, Ordering::Relaxed);
            if n > 1 {
                bump(&shared.counters.batches);
                shared
                    .counters
                    .batched_requests
                    .fetch_add(n as u64, Ordering::Relaxed);
            }
            for (job, result) in batch.into_iter().zip(results) {
                let _ = job.reply.send(Ok(result));
            }
        }
        Ok(Err(message)) => fail_batch(shared, batch, message),
        Err(_) => fail_batch(shared, batch, "worker panicked during execution".into()),
    }
}

fn fail_batch(shared: &Shared, batch: Vec<Job>, message: String) {
    // Counters before replies, as in the success path.
    shared
        .counters
        .exec_failures
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    for job in batch {
        let _ = job
            .reply
            .send(Err((ErrorCode::ExecutionFailed, message.clone())));
    }
}

/// Runs a structurally homogeneous batch (possibly of one) and builds
/// the per-job responses. Returns `Err(message)` on a typed execution
/// failure.
fn run_batch(shared: &Shared, batch: &[Job]) -> Result<Vec<RunResult>, String> {
    let n_qubits = batch[0].program.n_qubits();
    if batch.len() == 1 {
        let job = &batch[0];
        let (state, report) = shared
            .executor
            .run_structural(&job.program, StateVector::zero_state(n_qubits))
            .map_err(|e| e.to_string())?;
        let steps = report
            .steps
            .iter()
            .map(|s| WireStepReport {
                op: s.op.clone(),
                backend: s.backend.to_string(),
                predicted_s: s.predicted_s,
                measured_s: s.measured_s,
            })
            .collect();
        return Ok(vec![build_result(job, &state, steps, 1, false)]);
    }

    let members: Vec<QuantumProgram> = batch.iter().map(|j| j.program.clone()).collect();
    let initial = BatchStateVector::zero_state(n_qubits, members.len());
    let bex = BatchExecutor::from_hybrid(shared.executor.clone());
    let (states, report) = bex
        .run_with_report(&members, initial)
        .map_err(|e| e.to_string())?;
    let steps: Vec<WireStepReport> = report
        .steps
        .iter()
        .map(|s| WireStepReport {
            op: s.op.clone(),
            backend: if s.batched {
                format!("{}+batch", s.backend)
            } else {
                s.backend.to_string()
            },
            predicted_s: s.predicted_s,
            measured_s: s.measured_s,
        })
        .collect();
    Ok(batch
        .iter()
        .enumerate()
        .map(|(j, job)| build_result(job, &states.member(j), steps.clone(), batch.len(), true))
        .collect())
}

fn build_result(
    job: &Job,
    state: &StateVector,
    report: Vec<WireStepReport>,
    batch_size: usize,
    batched: bool,
) -> RunResult {
    let shots = if job.options.shots > 0 {
        let mut rng = StdRng::seed_from_u64(job.options.seed);
        sample_shots(state, job.options.shots as usize, &mut rng)
            .into_iter()
            .map(|s| s as u64)
            .collect()
    } else {
        Vec::new()
    };
    RunResult {
        n_qubits: state.n_qubits() as u8,
        amplitudes: job
            .options
            .want_amplitudes
            .then(|| state.amplitudes().to_vec()),
        shots,
        report,
        lane: job.lane,
        batched,
        batch_size: batch_size as u32,
        warm: job.warm,
    }
}

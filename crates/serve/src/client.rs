//! A minimal blocking client for the daemon: one TCP connection,
//! synchronous submit/stats round-trips over the frame protocol.

use crate::wire::{
    self, ErrorCode, FrameKind, RunResult, StatsSnapshot, SubmitOptions, WireError, WireProgram,
};
use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};

/// Everything a client call can fail with.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// Protocol-level failure (framing, encoding, I/O).
    Wire(WireError),
    /// The daemon answered with a typed error frame.
    Server {
        /// The daemon's error code (rejection taxonomy).
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The daemon answered with a frame kind the call did not expect.
    UnexpectedFrame,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Wire(e) => write!(f, "wire error: {e}"),
            ServeError::Server { code, message } => write!(f, "server error ({code}): {message}"),
            ServeError::UnexpectedFrame => write!(f, "unexpected frame kind from server"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> ServeError {
        ServeError::Wire(e)
    }
}

/// A blocking connection to a running daemon.
pub struct EmuClient {
    stream: TcpStream,
}

impl EmuClient {
    /// Connects to a daemon at `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<EmuClient, ServeError> {
        let stream = TcpStream::connect(addr).map_err(WireError::from)?;
        let _ = stream.set_nodelay(true);
        Ok(EmuClient { stream })
    }

    fn round_trip(
        &mut self,
        kind: FrameKind,
        payload: &[u8],
    ) -> Result<(FrameKind, Vec<u8>), ServeError> {
        wire::write_frame(&mut self.stream, kind, payload)?;
        match wire::read_frame(&mut self.stream)? {
            Some(frame) => Ok(frame),
            None => Err(ServeError::Wire(WireError::Truncated)),
        }
    }

    /// Submits a program for execution and blocks for the result.
    /// Rejections and failures arrive as [`ServeError::Server`] with the
    /// daemon's typed [`ErrorCode`].
    pub fn submit(
        &mut self,
        program: &WireProgram,
        options: &SubmitOptions,
    ) -> Result<RunResult, ServeError> {
        self.submit_encoded(&wire::encode_submit(program, options))
    }

    /// [`EmuClient::submit`] with a payload already encoded by
    /// [`wire::encode_submit`] — lets callers that replay stored or
    /// repeated requests skip re-serialisation on the hot path.
    pub fn submit_encoded(&mut self, payload: &[u8]) -> Result<RunResult, ServeError> {
        match self.round_trip(FrameKind::Submit, payload)? {
            (FrameKind::Result, body) => Ok(RunResult::decode(&body)?),
            (FrameKind::Error, body) => {
                let (code, message) = wire::decode_error(&body)?;
                Err(ServeError::Server { code, message })
            }
            _ => Err(ServeError::UnexpectedFrame),
        }
    }

    /// Fetches the daemon's counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServeError> {
        match self.round_trip(FrameKind::GetStats, &[])? {
            (FrameKind::Stats, body) => Ok(StatsSnapshot::decode(&body)?),
            (FrameKind::Error, body) => {
                let (code, message) = wire::decode_error(&body)?;
                Err(ServeError::Server { code, message })
            }
            _ => Err(ServeError::UnexpectedFrame),
        }
    }
}

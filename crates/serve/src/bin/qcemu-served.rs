//! The emulation daemon binary.
//!
//! ```text
//! qcemu-served [--addr HOST:PORT] [--workers N] [--max-qubits N]
//!              [--batch-window-ms MS] [--cache-capacity N] [--calibrated]
//! ```
//!
//! Binds, prints the listening address on stdout (so scripts can grab an
//! OS-assigned port from `--addr 127.0.0.1:0`), and serves until killed.

use qcemu_serve::{AdmissionPolicy, EmuServer, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: qcemu-served [--addr HOST:PORT] [--workers N] [--max-qubits N]\n\
         \x20                 [--batch-window-ms MS] [--cache-capacity N] [--calibrated]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("qcemu-served: {flag} needs a value");
            usage();
        }
    }
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut policy = AdmissionPolicy::default();
    let mut calibrated = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse(&mut args, "--addr"),
            "--workers" => config.workers = parse(&mut args, "--workers"),
            "--max-qubits" => policy.max_qubits = parse(&mut args, "--max-qubits"),
            "--batch-window-ms" => {
                config.batch_window = Duration::from_millis(parse(&mut args, "--batch-window-ms"))
            }
            "--cache-capacity" => config.plan_cache_capacity = parse(&mut args, "--cache-capacity"),
            "--calibrated" => calibrated = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("qcemu-served: unknown flag {other}");
                usage();
            }
        }
    }
    config.policy = policy;
    if calibrated {
        // Pay the micro-benchmark once at startup so the first tenant
        // doesn't.
        config.model = qcemu_core::CostModel::calibrated();
    }

    let server = match EmuServer::bind(&addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("qcemu-served: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let handle = match server.start() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("qcemu-served: cannot start: {e}");
            std::process::exit(1);
        }
    };
    println!("qcemu-served listening on {}", handle.addr());

    loop {
        std::thread::park();
    }
}

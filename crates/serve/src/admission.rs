//! Admission control: the daemon's decision of whether — and on which
//! lane — to run a request.
//!
//! The policy is driven by the same [`CostModel`](qcemu_core::CostModel)
//! the planner uses: a submitted program is lowered once (the plan goes
//! straight into the shared plan cache, so the work is never wasted) and
//! the plan's total predicted cost classifies the job:
//!
//! * `predicted ≤ fast_lane_cost_s` → **fast lane**: runs ahead of
//!   queued work, never waits behind an expensive job.
//! * `fast_lane_cost_s < predicted ≤ max_cost_s` → **queued lane**:
//!   admitted, but bounded by `max_queue_depth` (a full queue is a typed
//!   [`RejectReason::QueueFull`] rejection, not an unbounded pile-up).
//! * `predicted > max_cost_s` → rejected with
//!   [`RejectReason::OverBudget`].
//!
//! Before any planning happens at all, programs wider than `max_qubits`
//! are rejected with [`RejectReason::TooManyQubits`] — the qubit gate is
//! a cheap structural guard that protects the *planner* itself from 2^n
//! blow-up, not just the executor.
//!
//! All boundaries are **inclusive on the admit side**: a job exactly at
//! `max_qubits`, `fast_lane_cost_s` or `max_cost_s` is admitted (and a
//! job exactly at the fast-lane bound takes the fast lane). This makes
//! behaviour at the threshold deterministic under a fixed, non-calibrated
//! [`CostModel`](qcemu_core::CostModel), which the boundary tests rely
//! on.

use crate::wire::ErrorCode;
use std::fmt;

/// Admission policy knobs. See the module docs for the exact semantics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionPolicy {
    /// Largest program (in qubits) the daemon will plan at all.
    pub max_qubits: usize,
    /// Predicted-cost bound (seconds) under which a job takes the fast
    /// lane.
    pub fast_lane_cost_s: f64,
    /// Predicted-cost bound (seconds) above which a job is rejected.
    pub max_cost_s: f64,
    /// Bound on jobs waiting in the queued lane. Fast-lane jobs are not
    /// counted: they are cheap by definition, and bounding them would
    /// let one expensive tenant starve everyone's cheap requests.
    pub max_queue_depth: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> AdmissionPolicy {
        AdmissionPolicy {
            max_qubits: 24,
            fast_lane_cost_s: 0.050,
            max_cost_s: 30.0,
            max_queue_depth: 256,
        }
    }
}

/// Scheduling lane an admitted job is assigned to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitLane {
    /// Cheap: runs ahead of queued work.
    Fast,
    /// Expensive but within budget: waits its turn.
    Queued,
}

/// Why a request was turned away, with the numbers that decided it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RejectReason {
    /// The program is wider than the policy allows.
    TooManyQubits {
        /// The program's qubit count.
        n_qubits: usize,
        /// The policy bound it exceeded.
        max: usize,
    },
    /// The plan's predicted cost exceeds the budget.
    OverBudget {
        /// Model-predicted cost of the whole plan (seconds).
        predicted_s: f64,
        /// The policy bound it exceeded.
        max_s: f64,
    },
    /// The queued lane is full.
    QueueFull {
        /// Current queued-lane depth.
        depth: usize,
        /// The policy bound.
        max: usize,
    },
}

impl RejectReason {
    /// The wire error code this rejection maps to.
    pub fn code(&self) -> ErrorCode {
        match self {
            RejectReason::TooManyQubits { .. } => ErrorCode::TooManyQubits,
            RejectReason::OverBudget { .. } => ErrorCode::OverBudget,
            RejectReason::QueueFull { .. } => ErrorCode::QueueFull,
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::TooManyQubits { n_qubits, max } => {
                write!(f, "{n_qubits} qubits exceeds the daemon bound of {max}")
            }
            RejectReason::OverBudget { predicted_s, max_s } => write!(
                f,
                "predicted cost {predicted_s:.3e}s exceeds the budget of {max_s:.3e}s"
            ),
            RejectReason::QueueFull { depth, max } => {
                write!(f, "queue depth {depth} at the bound of {max}")
            }
        }
    }
}

impl std::error::Error for RejectReason {}

impl AdmissionPolicy {
    /// The pre-planning structural gate: programs wider than
    /// `max_qubits` never reach the planner.
    pub fn qubit_gate(&self, n_qubits: usize) -> Result<(), RejectReason> {
        if n_qubits > self.max_qubits {
            Err(RejectReason::TooManyQubits {
                n_qubits,
                max: self.max_qubits,
            })
        } else {
            Ok(())
        }
    }

    /// The post-planning cost gate: classifies an in-budget job into a
    /// lane, or rejects it. `queued_depth` is the current queued-lane
    /// occupancy (only consulted when the job would queue).
    pub fn admit(&self, predicted_s: f64, queued_depth: usize) -> Result<AdmitLane, RejectReason> {
        if predicted_s > self.max_cost_s {
            return Err(RejectReason::OverBudget {
                predicted_s,
                max_s: self.max_cost_s,
            });
        }
        if predicted_s <= self.fast_lane_cost_s {
            return Ok(AdmitLane::Fast);
        }
        if queued_depth >= self.max_queue_depth {
            return Err(RejectReason::QueueFull {
                depth: queued_depth,
                max: self.max_queue_depth,
            });
        }
        Ok(AdmitLane::Queued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AdmissionPolicy {
        AdmissionPolicy {
            max_qubits: 10,
            fast_lane_cost_s: 1.0,
            max_cost_s: 5.0,
            max_queue_depth: 2,
        }
    }

    #[test]
    fn qubit_gate_is_inclusive_at_the_bound() {
        let p = policy();
        assert!(p.qubit_gate(10).is_ok());
        assert_eq!(
            p.qubit_gate(11),
            Err(RejectReason::TooManyQubits {
                n_qubits: 11,
                max: 10
            })
        );
    }

    #[test]
    fn cost_boundaries_are_deterministic() {
        let p = policy();
        // Exactly at the fast-lane bound: fast.
        assert_eq!(p.admit(1.0, 0), Ok(AdmitLane::Fast));
        // Just above: queued.
        assert_eq!(p.admit(1.0 + 1e-9, 0), Ok(AdmitLane::Queued));
        // Exactly at the budget: admitted (queued).
        assert_eq!(p.admit(5.0, 0), Ok(AdmitLane::Queued));
        // Just above the budget: rejected.
        assert_eq!(
            p.admit(5.0 + 1e-9, 0),
            Err(RejectReason::OverBudget {
                predicted_s: 5.0 + 1e-9,
                max_s: 5.0
            })
        );
    }

    #[test]
    fn queue_depth_bounds_only_the_queued_lane() {
        let p = policy();
        // Queue at capacity: queued jobs bounce…
        assert_eq!(
            p.admit(2.0, 2),
            Err(RejectReason::QueueFull { depth: 2, max: 2 })
        );
        // …but fast-lane jobs still land.
        assert_eq!(p.admit(0.5, 2), Ok(AdmitLane::Fast));
    }

    #[test]
    fn reject_reasons_map_to_their_wire_codes() {
        assert_eq!(
            RejectReason::TooManyQubits {
                n_qubits: 9,
                max: 8
            }
            .code(),
            ErrorCode::TooManyQubits
        );
        assert_eq!(
            RejectReason::OverBudget {
                predicted_s: 9.0,
                max_s: 5.0
            }
            .code(),
            ErrorCode::OverBudget
        );
        assert_eq!(
            RejectReason::QueueFull { depth: 4, max: 4 }.code(),
            ErrorCode::QueueFull
        );
    }
}

//! The daemon's wire format: hand-rolled, length-prefixed frames.
//!
//! The repo is offline, so there is no serde and no protobuf — the
//! protocol is a small fixed binary encoding (little-endian throughout)
//! designed for two properties:
//!
//! 1. **Structure-preserving**: a [`WireProgram`] round-trips losslessly
//!    (`decode(encode(p)) == p`), and two wire programs that differ only
//!    in *parameters* (rotation coefficients, marked values via
//!    closures, classical map inputs) decode to [`QuantumProgram`]s with
//!    equal [`structure_hash`](qcemu_core::QuantumProgram::structure_hash) —
//!    which is what lets the daemon share one plan across requests.
//! 2. **Hostile-input safe**: every length is bounds-checked against the
//!    remaining payload and a hard cap, frames carry a checksum, and a
//!    truncated or corrupted frame is a typed [`WireError`], never a
//!    panic. Gates are validated against the program's qubit count at
//!    decode time through the `Result`-returning
//!    [`Circuit::try_push`](qcemu_sim::Circuit::try_push) path.
//!
//! ## Frame layout
//!
//! ```text
//! magic   2 bytes  "QE"
//! version 1 byte   0x01
//! kind    1 byte   message kind (see [`FrameKind`])
//! len     4 bytes  u32 LE payload length (capped at 64 MiB)
//! payload len bytes
//! check   4 bytes  u32 LE FNV-1a hash of the payload
//! ```
//!
//! The payload encodings are documented per message in
//! `docs/SERVING.md`.

use qcemu_core::{ProgramBuilder, QuantumProgram, RegisterId, RotationOp};
use qcemu_linalg::C64;
use qcemu_sim::{Circuit, Gate, GateOp};
use std::fmt;
use std::io::{Read, Write};
use std::sync::Arc;

/// Protocol magic: the first two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"QE";
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Hard cap on a frame payload (64 MiB — a 21-qubit amplitude dump is
/// 32 MiB, so responses fit with room to spare).
pub const MAX_PAYLOAD: usize = 64 << 20;
/// Hard cap on registers per program.
pub const MAX_REGISTERS: usize = 64;
/// Hard cap on ops per program.
pub const MAX_OPS: usize = 1024;
/// Hard cap on gates per raw-gates op.
pub const MAX_GATES: usize = 1 << 20;
/// Hard cap on measurement shots per request.
pub const MAX_SHOTS: usize = 1 << 20;
/// Hard cap on qubits a wire program may declare (the daemon's admission
/// policy usually cuts in far below this).
pub const MAX_WIRE_QUBITS: usize = 30;

/// Message kind of a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: run a program (payload: [`WireProgram`] +
    /// [`SubmitOptions`]).
    Submit = 0x01,
    /// Client → server: report daemon counters (empty payload).
    GetStats = 0x02,
    /// Server → client: run result (payload: [`RunResult`]).
    Result = 0x81,
    /// Server → client: counters (payload: [`StatsSnapshot`]).
    Stats = 0x82,
    /// Server → client: typed error (payload: [`ErrorCode`] + message).
    Error = 0x7f,
}

impl FrameKind {
    fn from_u8(b: u8) -> Result<FrameKind, WireError> {
        match b {
            0x01 => Ok(FrameKind::Submit),
            0x02 => Ok(FrameKind::GetStats),
            0x81 => Ok(FrameKind::Result),
            0x82 => Ok(FrameKind::Stats),
            0x7f => Ok(FrameKind::Error),
            other => Err(WireError::BadKind { got: other }),
        }
    }
}

/// Typed error code carried by an error frame — the daemon's rejection
/// and failure taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request frame or payload could not be decoded.
    Malformed = 1,
    /// The program decoded but failed validation (bad gate, bad
    /// register reference, builder rejection).
    InvalidProgram = 2,
    /// Admission control: the program exceeds the daemon's qubit bound.
    TooManyQubits = 3,
    /// Admission control: predicted cost exceeds the daemon's budget.
    OverBudget = 4,
    /// Admission control: the wait queue is full.
    QueueFull = 5,
    /// The job was admitted but execution failed.
    ExecutionFailed = 6,
    /// The daemon is shutting down.
    ShuttingDown = 7,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Result<ErrorCode, WireError> {
        match b {
            1 => Ok(ErrorCode::Malformed),
            2 => Ok(ErrorCode::InvalidProgram),
            3 => Ok(ErrorCode::TooManyQubits),
            4 => Ok(ErrorCode::OverBudget),
            5 => Ok(ErrorCode::QueueFull),
            6 => Ok(ErrorCode::ExecutionFailed),
            7 => Ok(ErrorCode::ShuttingDown),
            other => Err(WireError::BadErrorCode { got: other }),
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::Malformed => write!(f, "malformed request"),
            ErrorCode::InvalidProgram => write!(f, "invalid program"),
            ErrorCode::TooManyQubits => write!(f, "too many qubits"),
            ErrorCode::OverBudget => write!(f, "over cost budget"),
            ErrorCode::QueueFull => write!(f, "queue full"),
            ErrorCode::ExecutionFailed => write!(f, "execution failed"),
            ErrorCode::ShuttingDown => write!(f, "shutting down"),
        }
    }
}

/// Everything that can go wrong between bytes and a validated program.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// The input ended before the structure it promised.
    Truncated,
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// Unsupported protocol version.
    BadVersion {
        /// Version byte received.
        got: u8,
    },
    /// Unknown frame kind byte.
    BadKind {
        /// Kind byte received.
        got: u8,
    },
    /// Unknown error-code byte in an error frame.
    BadErrorCode {
        /// Code byte received.
        got: u8,
    },
    /// The payload checksum does not match — corruption in transit.
    ChecksumMismatch,
    /// Bytes remained after the payload's last structure.
    TrailingBytes,
    /// A declared length exceeds its hard cap.
    CapExceeded {
        /// Which cap (for the error message).
        what: &'static str,
    },
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// An op references a register index the program does not declare.
    BadRegisterIndex {
        /// The out-of-range index.
        index: usize,
    },
    /// A gate failed validation against the program's qubit count.
    InvalidGate(String),
    /// The decoded program failed semantic validation.
    BadProgram(String),
    /// An I/O error while reading or writing a frame.
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame or payload"),
            WireError::BadMagic => write!(f, "bad magic (not a qcemu frame)"),
            WireError::BadVersion { got } => write!(f, "unsupported protocol version {got}"),
            WireError::BadKind { got } => write!(f, "unknown frame kind 0x{got:02x}"),
            WireError::BadErrorCode { got } => write!(f, "unknown error code {got}"),
            WireError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            WireError::TrailingBytes => write!(f, "trailing bytes after payload structure"),
            WireError::CapExceeded { what } => write!(f, "declared {what} exceeds the hard cap"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadRegisterIndex { index } => {
                write!(f, "op references undeclared register {index}")
            }
            WireError::InvalidGate(e) => write!(f, "invalid gate: {e}"),
            WireError::BadProgram(e) => write!(f, "invalid program: {e}"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e.to_string())
    }
}

/// FNV-1a over the payload — cheap, dependency-free corruption check.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

// ---------------------------------------------------------------------------
// Frame I/O.
// ---------------------------------------------------------------------------

/// Writes one frame to `w`.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_PAYLOAD {
        return Err(WireError::CapExceeded { what: "payload" });
    }
    // One contiguous write: a frame split across write calls interacts
    // badly with Nagle + delayed ACK on real sockets (tens of ms of
    // added round-trip latency).
    let mut frame = Vec::with_capacity(8 + payload.len() + 4);
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(kind as u8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&checksum(payload).to_le_bytes());
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`, validating magic, version, length cap and
/// checksum. `Ok(None)` means the peer closed the connection cleanly
/// (EOF before the first byte).
pub fn read_frame(r: &mut impl Read) -> Result<Option<(FrameKind, Vec<u8>)>, WireError> {
    let mut head = [0u8; 8];
    let mut filled = 0;
    while filled < head.len() {
        match r.read(&mut head[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    if head[..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if head[2] != VERSION {
        return Err(WireError::BadVersion { got: head[2] });
    }
    let kind = FrameKind::from_u8(head[3])?;
    let len = u32::from_le_bytes(head[4..8].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::CapExceeded { what: "payload" });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::from(e)
        }
    })?;
    let mut check = [0u8; 4];
    r.read_exact(&mut check).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::from(e)
        }
    })?;
    if u32::from_le_bytes(check) != checksum(&payload) {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(Some((kind, payload)))
}

// ---------------------------------------------------------------------------
// Primitive readers/writers over a byte cursor.
// ---------------------------------------------------------------------------

/// Bounds-checked reader over a payload slice.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > 4096 {
            return Err(WireError::CapExceeded { what: "string" });
        }
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

pub(crate) fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// The serializable program.
// ---------------------------------------------------------------------------

/// A register declaration on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct WireRegister {
    /// Register name (hashed into the structure hash).
    pub name: String,
    /// Width in qubits.
    pub len: u32,
}

/// One op of a wire program.
///
/// Register references are **indices into the program's register list**
/// (declaration order), validated at decode. The op set mirrors what the
/// emulator can run from purely serialized data: raw gates, QFTs, the
/// named arithmetic ops of [`qcemu_core::stdops`] (whose closures the
/// server reconstructs), parameterised rotations, and marked-value phase
/// oracles. Ops carrying arbitrary user closures cannot cross the wire
/// by construction.
#[derive(Clone, Debug, PartialEq)]
pub enum WireOp {
    /// A raw gate run (validated gate-by-gate at decode).
    Gates(Vec<Gate>),
    /// H on every qubit of a register.
    Hadamard(u16),
    /// X-prepare a computational-basis constant in a register.
    SetConstant(u16, u64),
    /// QFT on a register.
    Qft(u16),
    /// Inverse QFT on a register.
    InverseQft(u16),
    /// `b += a (mod 2^m)` where `m` is the registers' shared width.
    Add {
        /// Source register index.
        a: u16,
        /// Destination register index.
        b: u16,
    },
    /// `c += a·b (mod 2^m)`.
    Multiply {
        /// First factor register index.
        a: u16,
        /// Second factor register index.
        b: u16,
        /// Accumulator register index.
        c: u16,
    },
    /// `q = a / b`, `r = a mod b` into zero-initialised targets.
    Divide {
        /// Dividend register index.
        a: u16,
        /// Divisor register index.
        b: u16,
        /// Quotient register index.
        q: u16,
        /// Remainder register index.
        r: u16,
    },
    /// Register-controlled `Ry(slope·x + intercept)` on a 1-qubit
    /// target: the *parameters* (slope, intercept) are invisible to the
    /// structure hash, so a sweep of these shares one plan.
    Rotation {
        /// Control register index.
        x: u16,
        /// Target register index (must be one qubit wide).
        target: u16,
        /// θ(x) slope.
        slope: f64,
        /// θ(x) intercept.
        intercept: f64,
    },
    /// Phase `e^{iφ}` on one marked register value (Grover-style oracle).
    MarkValue {
        /// Register index the predicate reads.
        reg: u16,
        /// The marked value.
        value: u64,
        /// Phase φ.
        phase: f64,
    },
}

/// A serializable quantum program: registers plus ops.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct WireProgram {
    /// Declared registers, in layout order.
    pub registers: Vec<WireRegister>,
    /// Ops, in program order.
    pub ops: Vec<WireOp>,
}

const OP_GATES: u8 = 0;
const OP_HADAMARD: u8 = 1;
const OP_SET_CONSTANT: u8 = 2;
const OP_QFT: u8 = 3;
const OP_IQFT: u8 = 4;
const OP_ADD: u8 = 5;
const OP_MULTIPLY: u8 = 6;
const OP_DIVIDE: u8 = 7;
const OP_ROTATION: u8 = 8;
const OP_MARK_VALUE: u8 = 9;

const GATE_UNARY: u8 = 0;
const GATE_SWAP: u8 = 1;

const GOP_X: u8 = 0;
const GOP_Y: u8 = 1;
const GOP_Z: u8 = 2;
const GOP_H: u8 = 3;
const GOP_S: u8 = 4;
const GOP_SDG: u8 = 5;
const GOP_T: u8 = 6;
const GOP_TDG: u8 = 7;
const GOP_RX: u8 = 8;
const GOP_RY: u8 = 9;
const GOP_RZ: u8 = 10;
const GOP_PHASE: u8 = 11;
const GOP_U: u8 = 12;

fn put_gate_op(out: &mut Vec<u8>, op: &GateOp) {
    match op {
        GateOp::X => out.push(GOP_X),
        GateOp::Y => out.push(GOP_Y),
        GateOp::Z => out.push(GOP_Z),
        GateOp::H => out.push(GOP_H),
        GateOp::S => out.push(GOP_S),
        GateOp::Sdg => out.push(GOP_SDG),
        GateOp::T => out.push(GOP_T),
        GateOp::Tdg => out.push(GOP_TDG),
        GateOp::Rx(t) => {
            out.push(GOP_RX);
            put_f64(out, *t);
        }
        GateOp::Ry(t) => {
            out.push(GOP_RY);
            put_f64(out, *t);
        }
        GateOp::Rz(t) => {
            out.push(GOP_RZ);
            put_f64(out, *t);
        }
        GateOp::Phase(t) => {
            out.push(GOP_PHASE);
            put_f64(out, *t);
        }
        GateOp::U(m) => {
            out.push(GOP_U);
            for row in m {
                for z in row {
                    put_f64(out, z.re);
                    put_f64(out, z.im);
                }
            }
        }
    }
}

fn read_gate_op(c: &mut Cursor<'_>) -> Result<GateOp, WireError> {
    Ok(match c.u8()? {
        GOP_X => GateOp::X,
        GOP_Y => GateOp::Y,
        GOP_Z => GateOp::Z,
        GOP_H => GateOp::H,
        GOP_S => GateOp::S,
        GOP_SDG => GateOp::Sdg,
        GOP_T => GateOp::T,
        GOP_TDG => GateOp::Tdg,
        GOP_RX => GateOp::Rx(c.f64()?),
        GOP_RY => GateOp::Ry(c.f64()?),
        GOP_RZ => GateOp::Rz(c.f64()?),
        GOP_PHASE => GateOp::Phase(c.f64()?),
        GOP_U => {
            let mut m = [[C64::ZERO; 2]; 2];
            for row in &mut m {
                for z in row {
                    z.re = c.f64()?;
                    z.im = c.f64()?;
                }
            }
            GateOp::U(m)
        }
        _ => return Err(WireError::InvalidGate("unknown gate op tag".into())),
    })
}

fn put_gate(out: &mut Vec<u8>, gate: &Gate) {
    match gate {
        Gate::Unary {
            op,
            target,
            controls,
        } => {
            out.push(GATE_UNARY);
            put_gate_op(out, op);
            put_u16(out, *target as u16);
            out.push(controls.len() as u8);
            for &q in controls {
                put_u16(out, q as u16);
            }
        }
        Gate::Swap { a, b, controls } => {
            out.push(GATE_SWAP);
            put_u16(out, *a as u16);
            put_u16(out, *b as u16);
            out.push(controls.len() as u8);
            for &q in controls {
                put_u16(out, q as u16);
            }
        }
    }
}

fn read_controls(c: &mut Cursor<'_>) -> Result<Vec<usize>, WireError> {
    let n = c.u8()? as usize;
    if n > 16 {
        return Err(WireError::CapExceeded { what: "controls" });
    }
    (0..n).map(|_| Ok(c.u16()? as usize)).collect()
}

fn read_gate(c: &mut Cursor<'_>) -> Result<Gate, WireError> {
    match c.u8()? {
        GATE_UNARY => {
            let op = read_gate_op(c)?;
            let target = c.u16()? as usize;
            let controls = read_controls(c)?;
            Ok(Gate::Unary {
                op,
                target,
                controls,
            })
        }
        GATE_SWAP => {
            let a = c.u16()? as usize;
            let b = c.u16()? as usize;
            let controls = read_controls(c)?;
            Ok(Gate::Swap { a, b, controls })
        }
        _ => Err(WireError::InvalidGate("unknown gate tag".into())),
    }
}

impl WireProgram {
    /// Total qubit count the registers declare.
    pub fn n_qubits(&self) -> usize {
        self.registers.iter().map(|r| r.len as usize).sum()
    }

    /// Serializes the program.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u16(&mut out, self.registers.len() as u16);
        for r in &self.registers {
            put_string(&mut out, &r.name);
            put_u32(&mut out, r.len);
        }
        put_u16(&mut out, self.ops.len() as u16);
        for op in &self.ops {
            match op {
                WireOp::Gates(gates) => {
                    out.push(OP_GATES);
                    put_u32(&mut out, gates.len() as u32);
                    for g in gates {
                        put_gate(&mut out, g);
                    }
                }
                WireOp::Hadamard(r) => {
                    out.push(OP_HADAMARD);
                    put_u16(&mut out, *r);
                }
                WireOp::SetConstant(r, v) => {
                    out.push(OP_SET_CONSTANT);
                    put_u16(&mut out, *r);
                    put_u64(&mut out, *v);
                }
                WireOp::Qft(r) => {
                    out.push(OP_QFT);
                    put_u16(&mut out, *r);
                }
                WireOp::InverseQft(r) => {
                    out.push(OP_IQFT);
                    put_u16(&mut out, *r);
                }
                WireOp::Add { a, b } => {
                    out.push(OP_ADD);
                    put_u16(&mut out, *a);
                    put_u16(&mut out, *b);
                }
                WireOp::Multiply { a, b, c } => {
                    out.push(OP_MULTIPLY);
                    put_u16(&mut out, *a);
                    put_u16(&mut out, *b);
                    put_u16(&mut out, *c);
                }
                WireOp::Divide { a, b, q, r } => {
                    out.push(OP_DIVIDE);
                    put_u16(&mut out, *a);
                    put_u16(&mut out, *b);
                    put_u16(&mut out, *q);
                    put_u16(&mut out, *r);
                }
                WireOp::Rotation {
                    x,
                    target,
                    slope,
                    intercept,
                } => {
                    out.push(OP_ROTATION);
                    put_u16(&mut out, *x);
                    put_u16(&mut out, *target);
                    put_f64(&mut out, *slope);
                    put_f64(&mut out, *intercept);
                }
                WireOp::MarkValue { reg, value, phase } => {
                    out.push(OP_MARK_VALUE);
                    put_u16(&mut out, *reg);
                    put_u64(&mut out, *value);
                    put_f64(&mut out, *phase);
                }
            }
        }
        out
    }

    /// Deserializes a program, bounds-checking every length.
    pub fn decode(bytes: &[u8]) -> Result<WireProgram, WireError> {
        let mut c = Cursor::new(bytes);
        let prog = WireProgram::read(&mut c)?;
        c.finish()?;
        Ok(prog)
    }

    pub(crate) fn read(c: &mut Cursor<'_>) -> Result<WireProgram, WireError> {
        let n_regs = c.u16()? as usize;
        if n_regs > MAX_REGISTERS {
            return Err(WireError::CapExceeded { what: "registers" });
        }
        let mut registers = Vec::with_capacity(n_regs);
        for _ in 0..n_regs {
            let name = c.string()?;
            let len = c.u32()?;
            if len as usize > MAX_WIRE_QUBITS {
                return Err(WireError::CapExceeded {
                    what: "register width",
                });
            }
            registers.push(WireRegister { name, len });
        }
        let n_ops = c.u16()? as usize;
        if n_ops > MAX_OPS {
            return Err(WireError::CapExceeded { what: "ops" });
        }
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            ops.push(match c.u8()? {
                OP_GATES => {
                    let n = c.u32()? as usize;
                    if n > MAX_GATES {
                        return Err(WireError::CapExceeded { what: "gates" });
                    }
                    let gates = (0..n).map(|_| read_gate(c)).collect::<Result<_, _>>()?;
                    WireOp::Gates(gates)
                }
                OP_HADAMARD => WireOp::Hadamard(c.u16()?),
                OP_SET_CONSTANT => WireOp::SetConstant(c.u16()?, c.u64()?),
                OP_QFT => WireOp::Qft(c.u16()?),
                OP_IQFT => WireOp::InverseQft(c.u16()?),
                OP_ADD => WireOp::Add {
                    a: c.u16()?,
                    b: c.u16()?,
                },
                OP_MULTIPLY => WireOp::Multiply {
                    a: c.u16()?,
                    b: c.u16()?,
                    c: c.u16()?,
                },
                OP_DIVIDE => WireOp::Divide {
                    a: c.u16()?,
                    b: c.u16()?,
                    q: c.u16()?,
                    r: c.u16()?,
                },
                OP_ROTATION => WireOp::Rotation {
                    x: c.u16()?,
                    target: c.u16()?,
                    slope: c.f64()?,
                    intercept: c.f64()?,
                },
                OP_MARK_VALUE => WireOp::MarkValue {
                    reg: c.u16()?,
                    value: c.u64()?,
                    phase: c.f64()?,
                },
                _ => return Err(WireError::BadProgram("unknown op tag".into())),
            });
        }
        Ok(WireProgram { registers, ops })
    }

    /// Builds the executable [`QuantumProgram`], validating register
    /// references, widths, and every raw gate (through the
    /// `Result`-returning [`Circuit::try_push`] path — a malformed gate
    /// is an error here, never a panic).
    ///
    /// Two wire programs with identical registers and op *structure*
    /// produce programs with equal
    /// [`structure_hash`](QuantumProgram::structure_hash) even when
    /// rotation coefficients differ — the parameters live in the angle
    /// closure, which the hash deliberately ignores.
    pub fn to_program(&self) -> Result<QuantumProgram, WireError> {
        if self.n_qubits() > MAX_WIRE_QUBITS {
            return Err(WireError::CapExceeded { what: "qubits" });
        }
        let mut pb = ProgramBuilder::new();
        let ids: Vec<RegisterId> = self
            .registers
            .iter()
            .map(|r| pb.register(&r.name, r.len as usize))
            .collect();
        let reg = |idx: u16| -> Result<RegisterId, WireError> {
            ids.get(idx as usize)
                .copied()
                .ok_or(WireError::BadRegisterIndex {
                    index: idx as usize,
                })
        };
        let width = |idx: u16| self.registers[idx as usize].len as usize;
        let n_qubits = self.n_qubits();
        for op in &self.ops {
            match op {
                WireOp::Gates(gates) => {
                    let mut circuit = Circuit::new(n_qubits);
                    for g in gates {
                        circuit
                            .try_push(g.clone())
                            .map_err(WireError::InvalidGate)?;
                    }
                    pb.gates(|c| c.extend(&circuit));
                }
                WireOp::Hadamard(r) => {
                    pb.hadamard_all(reg(*r)?);
                }
                WireOp::SetConstant(r, v) => {
                    pb.set_constant(reg(*r)?, *v);
                }
                WireOp::Qft(r) => {
                    pb.qft(reg(*r)?);
                }
                WireOp::InverseQft(r) => {
                    pb.inverse_qft(reg(*r)?);
                }
                WireOp::Add { a, b } => {
                    let (ra, rb) = (reg(*a)?, reg(*b)?);
                    let m = width(*a);
                    if width(*b) != m {
                        return Err(WireError::BadProgram(
                            "add: registers must share a width".into(),
                        ));
                    }
                    pb.classical(qcemu_core::stdops::add(ra, rb, m));
                }
                WireOp::Multiply { a, b, c } => {
                    let (ra, rb, rc) = (reg(*a)?, reg(*b)?, reg(*c)?);
                    let m = width(*a);
                    if width(*b) != m || width(*c) != m {
                        return Err(WireError::BadProgram(
                            "multiply: registers must share a width".into(),
                        ));
                    }
                    pb.classical(qcemu_core::stdops::multiply(ra, rb, rc, m));
                }
                WireOp::Divide { a, b, q, r } => {
                    let (ra, rb, rq, rr) = (reg(*a)?, reg(*b)?, reg(*q)?, reg(*r)?);
                    let m = width(*a);
                    if width(*b) != m || width(*q) != m || width(*r) != m {
                        return Err(WireError::BadProgram(
                            "divide: registers must share a width".into(),
                        ));
                    }
                    pb.classical(qcemu_core::stdops::divide(ra, rb, rq, rr, m));
                }
                WireOp::Rotation {
                    x,
                    target,
                    slope,
                    intercept,
                } => {
                    let (rx, rt) = (reg(*x)?, reg(*target)?);
                    if width(*target) != 1 {
                        return Err(WireError::BadProgram(
                            "rotation: target register must be one qubit wide".into(),
                        ));
                    }
                    let (slope, intercept) = (*slope, *intercept);
                    pb.rotation(RotationOp {
                        // Constant name: the parameters must not leak
                        // into the structure hash.
                        name: "wire-rot[affine]".into(),
                        x: rx,
                        target: rt,
                        angle: Arc::new(move |v| slope * v as f64 + intercept),
                        gate_impl: None,
                    });
                }
                WireOp::MarkValue {
                    reg: r,
                    value,
                    phase,
                } => {
                    pb.phase_oracle(qcemu_core::stdops::mark_value(reg(*r)?, *value, *phase));
                }
            }
        }
        pb.build().map_err(|e| WireError::BadProgram(e.to_string()))
    }
}

// ---------------------------------------------------------------------------
// Requests / responses above the program payload.
// ---------------------------------------------------------------------------

/// Per-request execution options.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubmitOptions {
    /// Measurement shots to sample from the final state.
    pub shots: u32,
    /// Seed for the shot sampler (deterministic per request).
    pub seed: u64,
    /// Return the full final amplitude vector (2^n pairs of f64 — only
    /// sensible at small n).
    pub want_amplitudes: bool,
}

impl Default for SubmitOptions {
    fn default() -> SubmitOptions {
        SubmitOptions {
            shots: 0,
            seed: 0,
            want_amplitudes: true,
        }
    }
}

impl SubmitOptions {
    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        put_u32(out, self.shots);
        put_u64(out, self.seed);
        out.push(u8::from(self.want_amplitudes));
    }

    pub(crate) fn read(c: &mut Cursor<'_>) -> Result<SubmitOptions, WireError> {
        let shots = c.u32()?;
        if shots as usize > MAX_SHOTS {
            return Err(WireError::CapExceeded { what: "shots" });
        }
        let seed = c.u64()?;
        let want_amplitudes = c.u8()? != 0;
        Ok(SubmitOptions {
            shots,
            seed,
            want_amplitudes,
        })
    }
}

/// Encodes a submit request payload (program + options).
pub fn encode_submit(program: &WireProgram, options: &SubmitOptions) -> Vec<u8> {
    let mut out = program.encode();
    options.write(&mut out);
    out
}

/// Decodes a submit request payload.
pub fn decode_submit(bytes: &[u8]) -> Result<(WireProgram, SubmitOptions), WireError> {
    let mut c = Cursor::new(bytes);
    let program = WireProgram::read(&mut c)?;
    let options = SubmitOptions::read(&mut c)?;
    c.finish()?;
    Ok((program, options))
}

/// Which scheduling lane served a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    /// Below the fast-lane cost bound: ran ahead of queued work.
    Fast,
    /// Queued behind other expensive work.
    Queued,
}

/// One step of the per-request plan audit (the serializable projection
/// of [`qcemu_core::StepReport`]).
#[derive(Clone, Debug, PartialEq)]
pub struct WireStepReport {
    /// Op label.
    pub op: String,
    /// Backend label (e.g. `emulate:classical`).
    pub backend: String,
    /// Model-predicted cost (seconds).
    pub predicted_s: f64,
    /// Measured wall time (seconds).
    pub measured_s: f64,
}

/// A successful run response.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Program qubit count.
    pub n_qubits: u8,
    /// Final amplitudes, when requested.
    pub amplitudes: Option<Vec<C64>>,
    /// Sampled measurement outcomes (basis indices), `shots` of them.
    pub shots: Vec<u64>,
    /// Per-op plan audit: backend, predicted vs measured cost.
    pub report: Vec<WireStepReport>,
    /// Scheduling lane the job ran on.
    pub lane: Lane,
    /// `true` when the job was coalesced into a batched execution with
    /// other structurally identical in-flight requests.
    pub batched: bool,
    /// Ensemble size the job ran in (1 for solo execution).
    pub batch_size: u32,
    /// `true` when the plan came from the warm cross-request cache
    /// (planning and fusion were skipped for this request).
    pub warm: bool,
}

impl RunResult {
    /// Serializes the response payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.n_qubits);
        match &self.amplitudes {
            Some(amps) => {
                out.push(1);
                put_u32(&mut out, amps.len() as u32);
                for z in amps {
                    put_f64(&mut out, z.re);
                    put_f64(&mut out, z.im);
                }
            }
            None => out.push(0),
        }
        put_u32(&mut out, self.shots.len() as u32);
        for &s in &self.shots {
            put_u64(&mut out, s);
        }
        put_u16(&mut out, self.report.len() as u16);
        for step in &self.report {
            put_string(&mut out, &step.op);
            put_string(&mut out, &step.backend);
            put_f64(&mut out, step.predicted_s);
            put_f64(&mut out, step.measured_s);
        }
        out.push(match self.lane {
            Lane::Fast => 0,
            Lane::Queued => 1,
        });
        out.push(u8::from(self.batched));
        put_u32(&mut out, self.batch_size);
        out.push(u8::from(self.warm));
        out
    }

    /// Deserializes the response payload.
    pub fn decode(bytes: &[u8]) -> Result<RunResult, WireError> {
        let mut c = Cursor::new(bytes);
        let n_qubits = c.u8()?;
        let amplitudes = match c.u8()? {
            0 => None,
            _ => {
                let n = c.u32()? as usize;
                if n > (1 << MAX_WIRE_QUBITS) {
                    return Err(WireError::CapExceeded { what: "amplitudes" });
                }
                let mut amps = Vec::with_capacity(n);
                for _ in 0..n {
                    let re = c.f64()?;
                    let im = c.f64()?;
                    amps.push(C64 { re, im });
                }
                Some(amps)
            }
        };
        let n_shots = c.u32()? as usize;
        if n_shots > MAX_SHOTS {
            return Err(WireError::CapExceeded { what: "shots" });
        }
        let shots = (0..n_shots).map(|_| c.u64()).collect::<Result<_, _>>()?;
        let n_steps = c.u16()? as usize;
        let mut report = Vec::with_capacity(n_steps);
        for _ in 0..n_steps {
            report.push(WireStepReport {
                op: c.string()?,
                backend: c.string()?,
                predicted_s: c.f64()?,
                measured_s: c.f64()?,
            });
        }
        let lane = match c.u8()? {
            0 => Lane::Fast,
            _ => Lane::Queued,
        };
        let batched = c.u8()? != 0;
        let batch_size = c.u32()?;
        let warm = c.u8()? != 0;
        c.finish()?;
        Ok(RunResult {
            n_qubits,
            amplitudes,
            shots,
            report,
            lane,
            batched,
            batch_size,
            warm,
        })
    }
}

/// Daemon counters, as served to clients.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Submit requests received (including rejected ones).
    pub requests: u64,
    /// Requests executed to completion.
    pub served: u64,
    /// Rejections: qubit bound.
    pub rejected_qubits: u64,
    /// Rejections: cost budget.
    pub rejected_cost: u64,
    /// Rejections: queue overflow.
    pub rejected_queue_full: u64,
    /// Requests that failed to decode or validate.
    pub malformed: u64,
    /// Admitted jobs whose execution failed.
    pub exec_failures: u64,
    /// Jobs that took the fast lane.
    pub fast_lane: u64,
    /// Jobs that were queued.
    pub queued: u64,
    /// Jobs served as part of a coalesced batch.
    pub batched_requests: u64,
    /// Coalesced batch executions.
    pub batches: u64,
    /// Jobs currently waiting or running.
    pub queue_depth: u64,
    /// Plan-cache hits (cross-request, structure-keyed).
    pub plan_hits: u64,
    /// Plan-cache misses (one fresh lowering each).
    pub plan_misses: u64,
    /// Plan-cache evictions under the capacity bound.
    pub plan_evictions: u64,
    /// Structures currently cached.
    pub plan_entries: u64,
    /// Worker-pool jobs dispatched (process-wide; `rayon::pool::stats`).
    pub pool_tasks_dispatched: u64,
    /// Worker-pool index blocks claimed beyond a participant's first —
    /// the dynamic-handoff rebalancing counter.
    pub pool_blocks_stolen: u64,
    /// Worker-pool condvar parks (a worker exhausted its spin budget).
    pub pool_parks: u64,
    /// Worker-pool condvar wake-ups.
    pub pool_wakeups: u64,
    /// Peak simultaneous participants (workers + callers) in any job.
    pub pool_peak_workers: u64,
}

impl StatsSnapshot {
    /// Serializes the counters.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for v in self.fields() {
            put_u64(&mut out, v);
        }
        out
    }

    /// Deserializes the counters.
    pub fn decode(bytes: &[u8]) -> Result<StatsSnapshot, WireError> {
        let mut c = Cursor::new(bytes);
        let mut s = StatsSnapshot::default();
        for f in s.fields_mut() {
            *f = c.u64()?;
        }
        c.finish()?;
        Ok(s)
    }

    fn fields(&self) -> [u64; 21] {
        [
            self.requests,
            self.served,
            self.rejected_qubits,
            self.rejected_cost,
            self.rejected_queue_full,
            self.malformed,
            self.exec_failures,
            self.fast_lane,
            self.queued,
            self.batched_requests,
            self.batches,
            self.queue_depth,
            self.plan_hits,
            self.plan_misses,
            self.plan_evictions,
            self.plan_entries,
            self.pool_tasks_dispatched,
            self.pool_blocks_stolen,
            self.pool_parks,
            self.pool_wakeups,
            self.pool_peak_workers,
        ]
    }

    fn fields_mut(&mut self) -> [&mut u64; 21] {
        [
            &mut self.requests,
            &mut self.served,
            &mut self.rejected_qubits,
            &mut self.rejected_cost,
            &mut self.rejected_queue_full,
            &mut self.malformed,
            &mut self.exec_failures,
            &mut self.fast_lane,
            &mut self.queued,
            &mut self.batched_requests,
            &mut self.batches,
            &mut self.queue_depth,
            &mut self.plan_hits,
            &mut self.plan_misses,
            &mut self.plan_evictions,
            &mut self.plan_entries,
            &mut self.pool_tasks_dispatched,
            &mut self.pool_blocks_stolen,
            &mut self.pool_parks,
            &mut self.pool_wakeups,
            &mut self.pool_peak_workers,
        ]
    }
}

/// Encodes an error frame payload.
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut out = vec![code as u8];
    put_string(&mut out, message);
    out
}

/// Decodes an error frame payload.
pub fn decode_error(bytes: &[u8]) -> Result<(ErrorCode, String), WireError> {
    let mut c = Cursor::new(bytes);
    let code = ErrorCode::from_u8(c.u8()?)?;
    let message = c.string()?;
    c.finish()?;
    Ok((code, message))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> WireProgram {
        WireProgram {
            registers: vec![
                WireRegister {
                    name: "a".into(),
                    len: 3,
                },
                WireRegister {
                    name: "ind".into(),
                    len: 1,
                },
            ],
            ops: vec![
                WireOp::Hadamard(0),
                WireOp::Gates(vec![
                    Gate::x(0),
                    Gate::cnot(0, 1),
                    Gate::unary(GateOp::Rz(0.25), 2),
                ]),
                WireOp::Rotation {
                    x: 0,
                    target: 1,
                    slope: 0.1,
                    intercept: 0.05,
                },
                WireOp::Qft(0),
            ],
        }
    }

    #[test]
    fn program_roundtrips() {
        let p = sample_program();
        let decoded = WireProgram::decode(&p.encode()).unwrap();
        assert_eq!(p, decoded);
        decoded.to_program().unwrap();
    }

    #[test]
    fn frame_roundtrips_over_a_buffer() {
        let payload = encode_submit(&sample_program(), &SubmitOptions::default());
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Submit, &payload).unwrap();
        let (kind, got) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(kind, FrameKind::Submit);
        assert_eq!(got, payload);
        let (prog, opts) = decode_submit(&got).unwrap();
        assert_eq!(prog, sample_program());
        assert_eq!(opts, SubmitOptions::default());
    }

    #[test]
    fn truncated_and_corrupted_frames_error_cleanly() {
        let payload = encode_submit(&sample_program(), &SubmitOptions::default());
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Submit, &payload).unwrap();
        // Truncation at every prefix length must be an error (or a clean
        // EOF at 0), never a panic.
        for cut in 0..buf.len() {
            match read_frame(&mut &buf[..cut]) {
                Ok(None) if cut == 0 => {}
                Ok(None) | Ok(Some(_)) => panic!("prefix {cut} decoded"),
                Err(_) => {}
            }
        }
        // A flipped payload byte fails the checksum.
        let mut corrupt = buf.clone();
        corrupt[10] ^= 0xff;
        assert!(matches!(
            read_frame(&mut corrupt.as_slice()),
            Err(WireError::ChecksumMismatch) | Err(WireError::BadKind { .. })
        ));
    }

    #[test]
    fn structure_hash_is_shared_across_parameter_variants() {
        let mut a = sample_program();
        let mut b = sample_program();
        if let WireOp::Rotation { slope, .. } = &mut a.ops[2] {
            *slope = 0.9;
        }
        if let WireOp::Rotation { intercept, .. } = &mut b.ops[2] {
            *intercept = 1.7;
        }
        let pa = a.to_program().unwrap();
        let pb = b.to_program().unwrap();
        assert_eq!(pa.structure_hash(), pb.structure_hash());
    }

    #[test]
    fn invalid_gates_and_register_refs_are_typed_errors() {
        let mut p = sample_program();
        p.ops[1] = WireOp::Gates(vec![Gate::x(99)]);
        assert!(matches!(p.to_program(), Err(WireError::InvalidGate(_))));
        let mut p = sample_program();
        p.ops[0] = WireOp::Hadamard(7);
        assert!(matches!(
            p.to_program(),
            Err(WireError::BadRegisterIndex { index: 7 })
        ));
        let mut p = sample_program();
        p.ops[2] = WireOp::Rotation {
            x: 0,
            target: 0, // 3 qubits wide: invalid target
            slope: 0.1,
            intercept: 0.0,
        };
        assert!(matches!(p.to_program(), Err(WireError::BadProgram(_))));
    }

    #[test]
    fn run_result_and_stats_roundtrip() {
        let result = RunResult {
            n_qubits: 4,
            amplitudes: Some(vec![C64 { re: 0.5, im: -0.5 }; 16]),
            shots: vec![3, 9, 3],
            report: vec![WireStepReport {
                op: "qft 'a'".into(),
                backend: "emulate:fft".into(),
                predicted_s: 1e-4,
                measured_s: 2e-4,
            }],
            lane: Lane::Fast,
            batched: true,
            batch_size: 4,
            warm: true,
        };
        assert_eq!(RunResult::decode(&result.encode()).unwrap(), result);
        let stats = StatsSnapshot {
            requests: 10,
            served: 8,
            plan_misses: 1,
            plan_hits: 7,
            pool_tasks_dispatched: 420,
            pool_blocks_stolen: 37,
            pool_parks: 5,
            pool_wakeups: 6,
            pool_peak_workers: 4,
            ..StatsSnapshot::default()
        };
        assert_eq!(StatsSnapshot::decode(&stats.encode()).unwrap(), stats);
        // A truncated (pre-pool, 16-field) frame must be rejected, not
        // zero-filled: the strict length check is the wire contract.
        let short = &stats.encode()[..16 * 8];
        assert!(StatsSnapshot::decode(short).is_err());
        let (code, msg) = decode_error(&encode_error(ErrorCode::QueueFull, "q")).unwrap();
        assert_eq!(code, ErrorCode::QueueFull);
        assert_eq!(msg, "q");
    }
}

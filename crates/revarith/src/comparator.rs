//! Reversible comparators via the subtract-overflow trick (paper §3.1:
//! "the test for less/equal by checking for overflow").
//!
//! `a > b` is read off the borrow bit of `b − a`; computing the flag and
//! then *uncomputing* the subtraction leaves only the answer — the
//! compute/copy/uncompute shape whose cost, paid in gates and an extra
//! work qubit, is exactly what emulation avoids.

use crate::adder::emit_sub;
use crate::register::{Layout, Register};
use qcemu_sim::Circuit;

/// A synthesised comparator.
pub struct ComparatorCircuit {
    /// The circuit.
    pub circuit: Circuit,
    /// Left operand (restored).
    pub a: Register,
    /// Right operand (restored).
    pub b: Register,
    /// Flag qubit: flipped iff the predicate holds. Must be |0⟩ on input
    /// for a plain read-out.
    pub flag: usize,
    /// Cuccaro work qubit.
    pub ancilla: usize,
    /// Total qubits (`2m + 2`).
    pub n_qubits: usize,
}

/// Builds the predicate `flag ^= (a > b)` on `2m + 2` qubits.
///
/// Implementation: run `b −= a` capturing the borrow into `flag`, then run
/// the inverse subtraction *without* borrow capture to restore `b`.
pub fn greater_than(m: usize) -> ComparatorCircuit {
    assert!(m >= 1);
    let mut l = Layout::new();
    let a = l.alloc(m);
    let b = l.alloc(m);
    let flag = l.alloc_qubit();
    let ancilla = l.alloc_qubit();
    let mut circuit = Circuit::new(l.total());

    // Compute: borrow of (b − a) = (a > b) lands in `flag`.
    emit_sub(&mut circuit, a, b, ancilla, Some(flag), &[]);
    // Uncompute the difference, leaving the flag: inverse of the same
    // subtraction but *without* the borrow tap.
    let mut fwd = Circuit::new(l.total());
    emit_sub(&mut fwd, a, b, ancilla, None, &[]);
    circuit.extend(&fwd.inverse());

    ComparatorCircuit {
        circuit,
        a,
        b,
        flag,
        ancilla,
        n_qubits: l.total(),
    }
}

/// Builds the predicate `flag ^= (a ≤ b)` (complement of [`greater_than`]).
pub fn less_equal(m: usize) -> ComparatorCircuit {
    let mut cmp = greater_than(m);
    // flag ^= 1 turns (a > b) into (a ≤ b).
    let flag = cmp.flag;
    cmp.circuit.x(flag);
    cmp
}

/// Builds `flag ^= (a == b)`: XOR `b` into `a` bitwise, flip `flag` when
/// `a` is all-zero (multi-controlled X on inverted bits), undo.
pub fn equal(m: usize) -> ComparatorCircuit {
    assert!(m >= 1);
    let mut l = Layout::new();
    let a = l.alloc(m);
    let b = l.alloc(m);
    let flag = l.alloc_qubit();
    let ancilla = l.alloc_qubit(); // unused; kept for layout parity
    let mut circuit = Circuit::new(l.total());

    for j in 0..m {
        circuit.cnot(b.bit(j), a.bit(j)); // a ^= b
        circuit.x(a.bit(j)); // invert: all-ones ⇔ equal
    }
    circuit.push(qcemu_sim::Gate::mcx(a.bits(), flag));
    for j in (0..m).rev() {
        circuit.x(a.bit(j));
        circuit.cnot(b.bit(j), a.bit(j));
    }

    ComparatorCircuit {
        circuit,
        a,
        b,
        flag,
        ancilla,
        n_qubits: l.total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitsim::run_classical;

    fn check(cmp: &ComparatorCircuit, av: u64, bv: u64, expect: bool) {
        let mut w = 0u64;
        w = cmp.a.set(w, av);
        w = cmp.b.set(w, bv);
        let out = run_classical(&cmp.circuit, w);
        assert_eq!(cmp.a.get(out), av, "a restored (a={av}, b={bv})");
        assert_eq!(cmp.b.get(out), bv, "b restored (a={av}, b={bv})");
        assert_eq!((out >> cmp.ancilla) & 1, 0, "ancilla restored");
        assert_eq!(
            (out >> cmp.flag) & 1,
            u64::from(expect),
            "flag wrong for a={av}, b={bv}"
        );
    }

    #[test]
    fn greater_than_exhaustive() {
        for m in 1..=4usize {
            let cmp = greater_than(m);
            let max = 1u64 << m;
            for av in 0..max {
                for bv in 0..max {
                    check(&cmp, av, bv, av > bv);
                }
            }
        }
    }

    #[test]
    fn less_equal_exhaustive() {
        let m = 3;
        let cmp = less_equal(m);
        for av in 0..8u64 {
            for bv in 0..8u64 {
                check(&cmp, av, bv, av <= bv);
            }
        }
    }

    #[test]
    fn equal_exhaustive() {
        for m in 1..=4usize {
            let cmp = equal(m);
            let max = 1u64 << m;
            for av in 0..max {
                for bv in 0..max {
                    check(&cmp, av, bv, av == bv);
                }
            }
        }
    }

    #[test]
    fn flag_xor_semantics() {
        // With flag initially 1, the comparator must XOR, not overwrite.
        let cmp = greater_than(2);
        let mut w = 0u64;
        w = cmp.a.set(w, 3);
        w = cmp.b.set(w, 1);
        w |= 1 << cmp.flag;
        let out = run_classical(&cmp.circuit, w);
        assert_eq!((out >> cmp.flag) & 1, 0, "1 XOR (3>1) = 0");
    }

    #[test]
    fn comparator_on_superposition() {
        use qcemu_sim::{Gate, StateVector};
        let cmp = greater_than(2);
        let mut sv = StateVector::zero_state(cmp.n_qubits);
        for qb in cmp.a.bits() {
            sv.apply(&Gate::h(qb));
        }
        sv.apply(&Gate::x(cmp.b.bit(0))); // b = 1
        sv.apply_circuit(&cmp.circuit);
        let all: Vec<usize> = (0..cmp.n_qubits).collect();
        for (idx, p) in sv.register_distribution(&all).iter().enumerate() {
            if *p < 1e-15 {
                continue;
            }
            let w = idx as u64;
            assert_eq!(
                (w >> cmp.flag) & 1,
                u64::from(cmp.a.get(w) > 1),
                "branch a={}",
                cmp.a.get(w)
            );
        }
    }
}

//! Bennett-style compilation of irreversible boolean circuits to Toffoli
//! networks (paper §3, refs [10, 11]).
//!
//! "A straight-forward approach to translating a classical function to a
//! reversible quantum circuit is to replace all NAND gates by the
//! reversible Toffoli gate, which requires an additional bit for each NAND
//! to store the result. After completion of the circuit, the result can be
//! copied using CNOT gates prior to clearing all (temporary) work bits by
//! running the entire circuit in reverse."
//!
//! That is exactly what [`compile_bennett`] does, for a small netlist IR of
//! NAND/AND/OR/XOR/NOT gates. The resulting gate and ancilla counts are the
//! "bad news for a simulator" the emulator sidesteps.

use crate::register::{Layout, Register};
use qcemu_sim::Circuit;

/// A wire in the boolean netlist: a primary input or the output of an
/// earlier gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wire {
    /// Primary input `i`.
    Input(usize),
    /// Output of netlist gate `g`.
    Node(usize),
}

/// One irreversible boolean gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoolGate {
    /// NAND — the universal gate the paper's argument is phrased in.
    Nand(Wire, Wire),
    /// AND.
    And(Wire, Wire),
    /// OR.
    Or(Wire, Wire),
    /// XOR.
    Xor(Wire, Wire),
    /// NOT.
    Not(Wire),
}

/// An irreversible boolean circuit: a gate list in topological order plus
/// designated output wires.
#[derive(Clone, Debug)]
pub struct BoolCircuit {
    /// Number of primary inputs.
    pub n_inputs: usize,
    /// Gates in topological order (a gate may reference inputs and earlier
    /// gates only).
    pub gates: Vec<BoolGate>,
    /// Output wires.
    pub outputs: Vec<Wire>,
}

impl BoolCircuit {
    /// Classical reference evaluation.
    pub fn eval(&self, input: u64) -> u64 {
        let mut node_vals = Vec::with_capacity(self.gates.len());
        let val = |w: Wire, nodes: &[bool]| -> bool {
            match w {
                Wire::Input(i) => (input >> i) & 1 == 1,
                Wire::Node(g) => nodes[g],
            }
        };
        for g in &self.gates {
            let v = match *g {
                BoolGate::Nand(x, y) => !(val(x, &node_vals) && val(y, &node_vals)),
                BoolGate::And(x, y) => val(x, &node_vals) && val(y, &node_vals),
                BoolGate::Or(x, y) => val(x, &node_vals) || val(y, &node_vals),
                BoolGate::Xor(x, y) => val(x, &node_vals) ^ val(y, &node_vals),
                BoolGate::Not(x) => !val(x, &node_vals),
            };
            node_vals.push(v);
        }
        let mut out = 0u64;
        for (j, &w) in self.outputs.iter().enumerate() {
            if val(w, &node_vals) {
                out |= 1 << j;
            }
        }
        out
    }

    /// Validates topological ordering and wire ranges.
    pub fn validate(&self) -> Result<(), String> {
        let check = |w: Wire, g_idx: usize| -> Result<(), String> {
            match w {
                Wire::Input(i) if i >= self.n_inputs => Err(format!(
                    "gate {g_idx} references input {i} of {}",
                    self.n_inputs
                )),
                Wire::Node(n) if n >= g_idx => {
                    Err(format!("gate {g_idx} references later node {n}"))
                }
                _ => Ok(()),
            }
        };
        for (g_idx, g) in self.gates.iter().enumerate() {
            match *g {
                BoolGate::Nand(x, y)
                | BoolGate::And(x, y)
                | BoolGate::Or(x, y)
                | BoolGate::Xor(x, y) => {
                    check(x, g_idx)?;
                    check(y, g_idx)?;
                }
                BoolGate::Not(x) => check(x, g_idx)?,
            }
        }
        for &w in &self.outputs {
            match w {
                Wire::Input(i) if i >= self.n_inputs => return Err("output wire bad".into()),
                Wire::Node(n) if n >= self.gates.len() => return Err("output wire bad".into()),
                _ => {}
            }
        }
        Ok(())
    }
}

/// The reversible compilation result.
pub struct BennettCircuit {
    /// The Toffoli/CNOT/X network: compute → copy → uncompute.
    pub circuit: Circuit,
    /// Primary input register (restored).
    pub inputs: Register,
    /// Output register (receives `outputs XOR f(inputs)`).
    pub outputs: Register,
    /// Work register, one qubit per netlist gate (|0⟩ in and out).
    pub work: Register,
    /// Total qubits.
    pub n_qubits: usize,
}

/// Compiles a boolean netlist to a reversible circuit with the Bennett
/// compute–copy–uncompute discipline: one ancilla per gate, all ancillas
/// returned to |0⟩, gate count `2·G_compute + |outputs|`.
pub fn compile_bennett(bc: &BoolCircuit) -> BennettCircuit {
    bc.validate().expect("invalid boolean circuit");
    let mut l = Layout::new();
    let inputs = l.alloc(bc.n_inputs.max(1));
    let outputs = l.alloc(bc.outputs.len().max(1));
    let work = l.alloc(bc.gates.len().max(1));
    let mut circuit = Circuit::new(l.total());

    let wire_qubit = |w: Wire| -> usize {
        match w {
            Wire::Input(i) => inputs.bit(i),
            Wire::Node(g) => work.bit(g),
        }
    };

    // Compute phase: evaluate every gate into its work qubit.
    let mut compute = Circuit::new(l.total());
    for (g_idx, g) in bc.gates.iter().enumerate() {
        let t = work.bit(g_idx);
        match *g {
            BoolGate::Nand(x, y) => {
                // t = 1 ⊕ (x ∧ y)
                compute.x(t);
                compute.toffoli(wire_qubit(x), wire_qubit(y), t);
            }
            BoolGate::And(x, y) => {
                compute.toffoli(wire_qubit(x), wire_qubit(y), t);
            }
            BoolGate::Or(x, y) => {
                // x ∨ y = (x ⊕ y) ⊕ (x ∧ y)
                compute.cnot(wire_qubit(x), t);
                compute.cnot(wire_qubit(y), t);
                compute.toffoli(wire_qubit(x), wire_qubit(y), t);
            }
            BoolGate::Xor(x, y) => {
                compute.cnot(wire_qubit(x), t);
                compute.cnot(wire_qubit(y), t);
            }
            BoolGate::Not(x) => {
                compute.cnot(wire_qubit(x), t);
                compute.x(t);
            }
        }
    }
    circuit.extend(&compute);

    // Copy phase: CNOT results into the output register.
    for (j, &w) in bc.outputs.iter().enumerate() {
        circuit.cnot(wire_qubit(w), outputs.bit(j));
    }

    // Uncompute phase: run the compute circuit in reverse.
    circuit.extend(&compute.inverse());

    BennettCircuit {
        circuit,
        inputs,
        outputs,
        work,
        n_qubits: l.total(),
    }
}

/// Builds a NAND-only full adder netlist (the classic 9-NAND construction),
/// useful as a non-trivial compilation test case.
pub fn full_adder_nand() -> BoolCircuit {
    use BoolGate::*;
    use Wire::*;
    // Inputs: 0 = a, 1 = b, 2 = cin. Outputs: sum, cout.
    let gates = vec![
        Nand(Input(0), Input(1)), // 0: n0 = ¬(ab)
        Nand(Input(0), Node(0)),  // 1
        Nand(Input(1), Node(0)),  // 2
        Nand(Node(1), Node(2)),   // 3: a ⊕ b
        Nand(Node(3), Input(2)),  // 4
        Nand(Node(3), Node(4)),   // 5
        Nand(Input(2), Node(4)),  // 6
        Nand(Node(5), Node(6)),   // 7: sum
        Nand(Node(4), Node(0)),   // 8: cout
    ];
    BoolCircuit {
        n_inputs: 3,
        gates,
        outputs: vec![Node(7), Node(8)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitsim::run_classical;
    use BoolGate::*;
    use Wire::*;

    fn check_compiled(bc: &BoolCircuit) {
        let comp = compile_bennett(bc);
        for input in 0..(1u64 << bc.n_inputs) {
            let expect = bc.eval(input);
            let mut w = comp.inputs.set(0, input);
            let out = run_classical(&comp.circuit, w);
            assert_eq!(comp.inputs.get(out), input, "inputs restored");
            assert_eq!(comp.outputs.get(out), expect, "f({input}) wrong");
            assert_eq!(comp.work.get(out), 0, "ancillas must be |0⟩ again");
            // XOR semantics: pre-set output register toggles.
            w = comp.outputs.set(w, comp.outputs.mask());
            let out2 = run_classical(&comp.circuit, w);
            assert_eq!(
                comp.outputs.get(out2),
                expect ^ comp.outputs.mask(),
                "output must XOR"
            );
        }
    }

    #[test]
    fn single_gates_compile_correctly() {
        for g in [
            Nand(Input(0), Input(1)),
            And(Input(0), Input(1)),
            Or(Input(0), Input(1)),
            Xor(Input(0), Input(1)),
        ] {
            let bc = BoolCircuit {
                n_inputs: 2,
                gates: vec![g],
                outputs: vec![Node(0)],
            };
            check_compiled(&bc);
        }
        let not = BoolCircuit {
            n_inputs: 1,
            gates: vec![Not(Input(0))],
            outputs: vec![Node(0)],
        };
        check_compiled(&not);
    }

    #[test]
    fn nand_full_adder_is_correct() {
        let bc = full_adder_nand();
        // Truth-table check of the netlist itself first.
        for input in 0..8u64 {
            let a = input & 1;
            let b = (input >> 1) & 1;
            let cin = (input >> 2) & 1;
            let total = a + b + cin;
            assert_eq!(bc.eval(input), (total & 1) | ((total >> 1) << 1));
        }
        check_compiled(&bc);
    }

    #[test]
    fn deep_chain_compiles() {
        // x0 through a chain of 20 NOTs: result = x0 (even) — all ancillas
        // must still be cleaned.
        let mut gates = vec![Not(Input(0))];
        for g in 0..19 {
            gates.push(Not(Node(g)));
        }
        let bc = BoolCircuit {
            n_inputs: 1,
            gates,
            outputs: vec![Node(19)],
        };
        check_compiled(&bc);
    }

    #[test]
    fn ancilla_count_is_one_per_gate() {
        let bc = full_adder_nand();
        let comp = compile_bennett(&bc);
        assert_eq!(comp.work.len, bc.gates.len());
        // Paper's cost statement: compute + uncompute ≈ doubles gates.
        let compute_gates: usize = bc
            .gates
            .iter()
            .map(|g| match g {
                Nand(..) => 2,
                And(..) => 1,
                Or(..) => 3,
                Xor(..) => 2,
                Not(..) => 2,
            })
            .sum();
        assert_eq!(
            comp.circuit.gate_count(),
            2 * compute_gates + bc.outputs.len()
        );
    }

    #[test]
    fn validation_rejects_forward_references() {
        let bc = BoolCircuit {
            n_inputs: 1,
            gates: vec![And(Input(0), Node(5))],
            outputs: vec![Node(0)],
        };
        assert!(bc.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid boolean circuit")]
    fn compile_panics_on_invalid() {
        let bc = BoolCircuit {
            n_inputs: 1,
            gates: vec![And(Input(3), Input(0))],
            outputs: vec![Node(0)],
        };
        let _ = compile_bennett(&bc);
    }
}

//! Classical executor for reversible (permutation) circuits.
//!
//! Arithmetic circuits built from X/CNOT/Toffoli/SWAP map basis states to
//! basis states, so they can be validated on classical bit-words in O(G)
//! instead of O(G·2ⁿ). This is how the test suite checks adders and
//! dividers exhaustively at sizes a state vector could never hold.

use qcemu_sim::{Circuit, Gate, GateOp};

/// Applies a permutation-only circuit to a classical bit configuration.
///
/// Panics if the circuit contains a non-classical gate (anything that is
/// not X or SWAP, possibly controlled).
pub fn run_classical(circuit: &Circuit, mut bits: u64) -> u64 {
    for gate in circuit.gates() {
        bits = apply_classical_gate(gate, bits);
    }
    bits
}

/// Applies one permutation gate to a bit-word.
pub fn apply_classical_gate(gate: &Gate, bits: u64) -> u64 {
    match gate {
        Gate::Unary {
            op: GateOp::X,
            target,
            controls,
        } => {
            if controls_set(bits, controls) {
                bits ^ (1u64 << target)
            } else {
                bits
            }
        }
        Gate::Swap { a, b, controls } => {
            if controls_set(bits, controls) {
                let ba = (bits >> a) & 1;
                let bb = (bits >> b) & 1;
                if ba != bb {
                    bits ^ (1u64 << a) ^ (1u64 << b)
                } else {
                    bits
                }
            } else {
                bits
            }
        }
        other => panic!("non-classical gate in reversible circuit: {other:?}"),
    }
}

/// `true` if every gate in the circuit is classical (permutation).
pub fn is_classical_circuit(circuit: &Circuit) -> bool {
    circuit
        .gates()
        .iter()
        .all(|g| matches!(g, Gate::Unary { op: GateOp::X, .. } | Gate::Swap { .. }))
}

#[inline]
fn controls_set(bits: u64, controls: &[usize]) -> bool {
    controls.iter().all(|&c| (bits >> c) & 1 == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcemu_sim::StateVector;

    #[test]
    fn x_flips_bit() {
        let mut c = Circuit::new(3);
        c.x(1);
        assert_eq!(run_classical(&c, 0b000), 0b010);
        assert_eq!(run_classical(&c, 0b010), 0b000);
    }

    #[test]
    fn cnot_and_toffoli() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1).toffoli(0, 1, 2);
        // 0b001 → CNOT sets bit1 → 0b011 → Toffoli sets bit2 → 0b111.
        assert_eq!(run_classical(&c, 0b001), 0b111);
        // 0b000: nothing fires.
        assert_eq!(run_classical(&c, 0b000), 0b000);
    }

    #[test]
    fn swap_exchanges() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        assert_eq!(run_classical(&c, 0b01), 0b10);
        assert_eq!(run_classical(&c, 0b11), 0b11);
    }

    #[test]
    fn controlled_swap() {
        let mut c = Circuit::new(3);
        c.push(Gate::Swap {
            a: 0,
            b: 1,
            controls: vec![2],
        });
        assert_eq!(run_classical(&c, 0b001), 0b001); // control off
        assert_eq!(run_classical(&c, 0b101), 0b110); // control on
    }

    #[test]
    #[should_panic(expected = "non-classical gate")]
    fn rejects_hadamard() {
        let mut c = Circuit::new(1);
        c.h(0);
        run_classical(&c, 0);
    }

    #[test]
    fn classical_detection() {
        let mut c = Circuit::new(3);
        c.x(0).cnot(0, 1).toffoli(0, 1, 2).swap(0, 2);
        assert!(is_classical_circuit(&c));
        c.h(0);
        assert!(!is_classical_circuit(&c));
    }

    #[test]
    fn agrees_with_statevector_simulation() {
        // The bit executor and the full simulator must implement the same
        // permutation semantics.
        let mut c = Circuit::new(4);
        c.x(0)
            .cnot(0, 2)
            .toffoli(0, 2, 3)
            .swap(1, 3)
            .push(Gate::mcx(vec![0, 2, 3], 1));
        for input in 0..16usize {
            let classical = run_classical(&c, input as u64) as usize;
            let mut sv = StateVector::basis_state(4, input);
            sv.apply_circuit(&c);
            assert!(
                (sv.probability(classical) - 1.0).abs() < 1e-12,
                "input {input}: classical says {classical}"
            );
        }
    }

    #[test]
    fn circuits_are_reversible() {
        let mut c = Circuit::new(5);
        c.x(0).cnot(0, 1).toffoli(1, 2, 3).swap(3, 4).cnot(4, 0);
        let inv = c.inverse();
        for input in 0..32u64 {
            let out = run_classical(&c, input);
            assert_eq!(run_classical(&inv, out), input);
        }
    }
}

//! Contiguous qubit registers and classical bit-word helpers.

/// A contiguous run of qubits interpreted as a little-endian integer
/// register (bit `j` of the value lives on qubit `offset + j`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Register {
    /// First qubit index.
    pub offset: usize,
    /// Number of qubits.
    pub len: usize,
}

impl Register {
    /// Creates a register covering `offset .. offset + len`.
    pub fn new(offset: usize, len: usize) -> Register {
        Register { offset, len }
    }

    /// The qubit index of value-bit `j`.
    #[inline]
    pub fn bit(&self, j: usize) -> usize {
        assert!(
            j < self.len,
            "register bit {j} out of range (len {})",
            self.len
        );
        self.offset + j
    }

    /// All qubit indices, LSB first.
    pub fn bits(&self) -> Vec<usize> {
        (self.offset..self.offset + self.len).collect()
    }

    /// A sub-register of `len` bits starting at value-bit `start`.
    pub fn slice(&self, start: usize, len: usize) -> Register {
        assert!(start + len <= self.len, "slice out of range");
        Register {
            offset: self.offset + start,
            len,
        }
    }

    /// Reads this register's value out of a classical bit-word.
    #[inline]
    pub fn get(&self, word: u64) -> u64 {
        (word >> self.offset) & self.mask()
    }

    /// Writes `value` (truncated to the register width) into a bit-word.
    #[inline]
    pub fn set(&self, word: u64, value: u64) -> u64 {
        (word & !(self.mask() << self.offset)) | ((value & self.mask()) << self.offset)
    }

    /// Value mask `2^len − 1`.
    #[inline]
    pub fn mask(&self) -> u64 {
        if self.len >= 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        }
    }

    /// One-past-the-end qubit index.
    #[inline]
    pub fn end(&self) -> usize {
        self.offset + self.len
    }
}

/// Simple bump allocator for laying out registers on a qubit line.
#[derive(Default, Debug)]
pub struct Layout {
    next: usize,
}

impl Layout {
    /// Empty layout.
    pub fn new() -> Layout {
        Layout { next: 0 }
    }

    /// Allocates the next `len` qubits as a register.
    pub fn alloc(&mut self, len: usize) -> Register {
        let r = Register::new(self.next, len);
        self.next += len;
        r
    }

    /// Allocates a single qubit, returning its index.
    pub fn alloc_qubit(&mut self) -> usize {
        let q = self.next;
        self.next += 1;
        q
    }

    /// Total qubits allocated so far.
    pub fn total(&self) -> usize {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_bits_and_indexing() {
        let r = Register::new(3, 4);
        assert_eq!(r.bits(), vec![3, 4, 5, 6]);
        assert_eq!(r.bit(0), 3);
        assert_eq!(r.bit(3), 6);
        assert_eq!(r.end(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        Register::new(0, 2).bit(2);
    }

    #[test]
    fn get_set_roundtrip() {
        let r = Register::new(5, 6);
        let w = r.set(0, 0b101101);
        assert_eq!(r.get(w), 0b101101);
        // Other bits untouched.
        let w2 = r.set(u64::MAX, 0);
        assert_eq!(r.get(w2), 0);
        assert_eq!(w2 | (r.mask() << r.offset), u64::MAX);
    }

    #[test]
    fn set_truncates_to_width() {
        let r = Register::new(0, 3);
        assert_eq!(r.get(r.set(0, 0b11111)), 0b111);
    }

    #[test]
    fn slicing() {
        let r = Register::new(2, 8);
        let s = r.slice(3, 2);
        assert_eq!(s.offset, 5);
        assert_eq!(s.len, 2);
    }

    #[test]
    fn layout_allocation() {
        let mut l = Layout::new();
        let a = l.alloc(4);
        let q = l.alloc_qubit();
        let b = l.alloc(2);
        assert_eq!(a, Register::new(0, 4));
        assert_eq!(q, 4);
        assert_eq!(b, Register::new(5, 2));
        assert_eq!(l.total(), 7);
    }
}

//! # qcemu-revarith
//!
//! Reversible arithmetic circuit synthesis — the gate-level circuits the
//! paper's *simulator* must grind through so that the *emulator*'s §3.1
//! shortcuts have an honest baseline:
//!
//! * [`adder`](mod@adder) — Cuccaro ripple-carry adder/subtractor (paper ref. \[12\])
//!   with carry/borrow taps and controlled variants;
//! * [`multiplier`](mod@multiplier) — repeated-addition-and-shift: `(a,b,c) ↦ (a,b,c+ab)`
//!   on `3m+1` qubits (Fig. 1 workload);
//! * [`divider`](mod@divider) — restoring repeated-subtraction-and-shift division on
//!   `4m+3` qubits, whose extra work qubits are exactly why Fig. 2's
//!   speedups dwarf Fig. 1's;
//! * [`comparator`] — overflow-based `>` / `≤` / `=` predicates;
//! * [`bennett`] — NAND-netlist → Toffoli-network compilation with the
//!   compute–copy–uncompute discipline (paper refs [10, 11]);
//! * [`bitsim`] — O(G) classical executor for permutation circuits, used
//!   to validate arithmetic exhaustively at widths no state vector fits;
//! * [`register`] — contiguous qubit registers and layout allocation.

pub mod adder;
pub mod bennett;
pub mod bitsim;
pub mod comparator;
pub mod divider;
pub mod multiplier;
pub mod register;

pub use adder::{adder, emit_add, emit_sub, subtractor, AdderCircuit};
pub use bennett::{compile_bennett, full_adder_nand, BennettCircuit, BoolCircuit, BoolGate, Wire};
pub use bitsim::{apply_classical_gate, is_classical_circuit, run_classical};
pub use comparator::{equal, greater_than, less_equal, ComparatorCircuit};
pub use divider::{divider, divider_model, DividerCircuit};
pub use multiplier::{multiplier, multiplier_model, MultiplierCircuit};
pub use register::{Layout, Register};

//! Restoring (repeated-subtraction-and-shift) divider (paper §3.1, Fig. 2).
//!
//! Computes `(a, b, q=0, r=0) ↦ (a, b, ⌊a/b⌋, a mod b)` by classical long
//! division made reversible. The remainder window is one bit wider than the
//! operands and each round runs a subtract / conditional-restore sequence —
//! these are the "extra work qubits required to do the test for less/equal
//! by checking for overflow" that make division so much more expensive to
//! *simulate* than multiplication (the paper's Fig. 2 observation: the
//! speedup of emulation is far greater than for multiplication, and memory
//! caps the simulable size earlier).
//!
//! Register budget: `a`(m) + `b`(m) + `q`(m) + window `r`(m+1) + zero-extend
//! qubit + Cuccaro ancilla = `4m + 3` qubits, versus `3m + 1` for the
//! multiplier.
//!
//! Round `i` (from the most significant dividend bit down):
//! 1. shift the window left one bit (its top bit is 0 by invariant);
//! 2. copy dividend bit `a_i` into the window LSB (CNOT keeps `a` intact);
//! 3. subtract the zero-extended divisor from the (m+1)-bit window; the
//!    window's top bit becomes the *borrow* flag;
//! 4. controlled on the flag, add the divisor back to the low m bits
//!    (mod 2^m: the restore cannot cancel the flag);
//! 5. move the flag into `q_i` (two CNOTs), then X so `q_i = 1` means the
//!    subtraction succeeded.

use crate::adder::emit_add;
use crate::register::{Layout, Register};
use qcemu_sim::{Circuit, Gate};

/// A synthesised divider with its register layout.
pub struct DividerCircuit {
    /// The circuit.
    pub circuit: Circuit,
    /// Dividend (restored).
    pub a: Register,
    /// Divisor (restored).
    pub b: Register,
    /// Quotient output (must be |0⟩ on input).
    pub q: Register,
    /// Remainder window; on output its low `m` bits hold `a mod b` and the
    /// top bit is |0⟩. Must be |0⟩ on input.
    pub r: Register,
    /// Zero-extension qubit for the divisor (|0⟩ in and out).
    pub b_ext: usize,
    /// Cuccaro work qubit (|0⟩ in and out).
    pub ancilla: usize,
    /// Total qubits (`4m + 3`).
    pub n_qubits: usize,
}

/// Builds the `m`-bit restoring divider.
pub fn divider(m: usize) -> DividerCircuit {
    assert!(m >= 1, "divider needs at least 1 bit");
    let mut l = Layout::new();
    let a = l.alloc(m);
    let b = l.alloc(m);
    let q = l.alloc(m);
    let r = l.alloc(m + 1); // window + borrow flag bit
    let b_ext = l.alloc_qubit();
    let ancilla = l.alloc_qubit();
    let mut circuit = Circuit::new(l.total());

    // The (m+1)-bit "extended divisor" register view: b's m qubits plus the
    // constant-zero extension qubit as MSB. Cuccaro restores its first
    // operand, so using b_ext this way is sound. Register views must be
    // contiguous, so express the extended operand via a helper register
    // only when layouts align — here they do not, so we emit the subtract
    // on a synthetic register list instead.
    for i in (0..m).rev() {
        // 1. Shift window left (top bit is 0 by invariant).
        for j in (1..=m).rev() {
            circuit.push(Gate::swap(r.bit(j), r.bit(j - 1)));
        }
        // 2. Bring in dividend bit i.
        circuit.push(Gate::cnot(a.bit(i), r.bit(0)));
        // 3. Window −= divisor (zero-extended), mod 2^{m+1}.
        emit_sub_extended(&mut circuit, b, b_ext, r, ancilla);
        // 4. Conditional restore of the low m bits (mod 2^m).
        let r_low = r.slice(0, m);
        emit_add(&mut circuit, b, r_low, ancilla, None, &[r.bit(m)]);
        // 5. Extract the quotient bit.
        circuit.push(Gate::cnot(r.bit(m), q.bit(i)));
        circuit.push(Gate::cnot(q.bit(i), r.bit(m)));
        circuit.push(Gate::x(q.bit(i)));
    }

    DividerCircuit {
        circuit,
        a,
        b,
        q,
        r,
        b_ext,
        ancilla,
        n_qubits: l.total(),
    }
}

/// Subtract the (m+1)-bit operand `[b, b_ext]` from the (m+1)-bit register
/// `r`. Identical to [`emit_sub`] but the first operand is `b`'s qubits
/// followed by the lone `b_ext` qubit, which is not contiguous with them.
fn emit_sub_extended(
    circuit: &mut Circuit,
    b: Register,
    b_ext: usize,
    r: Register,
    ancilla: usize,
) {
    let m = b.len;
    assert_eq!(r.len, m + 1);
    // Complement conjugation: r ← ¬(¬r + b_ext·2^m + b).
    for j in 0..r.len {
        circuit.push(Gate::x(r.bit(j)));
    }
    // Inline MAJ/UMA ladder over the non-contiguous operand list.
    let a_bits: Vec<usize> = b.bits().into_iter().chain(std::iter::once(b_ext)).collect();
    let b_bits: Vec<usize> = r.bits();
    maj_uma_ladder(circuit, &a_bits, &b_bits, ancilla);
    for j in 0..r.len {
        circuit.push(Gate::x(r.bit(j)));
    }
}

/// Cuccaro ladder on explicit qubit lists (first operand restored, second
/// receives the sum mod 2^len).
fn maj_uma_ladder(circuit: &mut Circuit, a_bits: &[usize], b_bits: &[usize], ancilla: usize) {
    assert_eq!(a_bits.len(), b_bits.len());
    let m = a_bits.len();
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cnot(z, y);
        c.cnot(z, x);
        c.toffoli(x, y, z);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.toffoli(x, y, z);
        c.cnot(z, x);
        c.cnot(x, y);
    };
    maj(circuit, ancilla, b_bits[0], a_bits[0]);
    for i in 1..m {
        maj(circuit, a_bits[i - 1], b_bits[i], a_bits[i]);
    }
    for i in (1..m).rev() {
        uma(circuit, a_bits[i - 1], b_bits[i], a_bits[i]);
    }
    uma(circuit, ancilla, b_bits[0], a_bits[0]);
}

/// Classical model of the exact circuit semantics, including the `b = 0`
/// corner (where "subtract 0" always succeeds, giving `q = 2^m − 1` and the
/// window retaining the shifted-in dividend bits). The emulator uses this
/// model so that emulation and simulation agree bit-for-bit on *every*
/// input, not just well-formed ones.
pub fn divider_model(m: usize, a: u64, b: u64) -> (u64, u64) {
    let mask = (1u64 << m) - 1;
    let a = a & mask;
    let b = b & mask;
    let mut r: u64 = 0;
    let mut q: u64 = 0;
    for i in (0..m).rev() {
        let window = (r << 1) | ((a >> i) & 1);
        if window >= b {
            // Subtraction succeeds (this branch always taken when b = 0).
            r = (window.wrapping_sub(b)) & mask;
            q |= 1 << i;
        } else {
            r = window;
        }
    }
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitsim::run_classical;

    fn run_div(m: usize, av: u64, bv: u64) -> DivOutcome {
        let dc = divider(m);
        let mut w = 0u64;
        w = dc.a.set(w, av);
        w = dc.b.set(w, bv);
        let out = run_classical(&dc.circuit, w);
        DivOutcome {
            a: dc.a.get(out),
            b: dc.b.get(out),
            q: dc.q.get(out),
            r_low: dc.r.slice(0, m).get(out),
            r_top: (out >> dc.r.bit(m)) & 1,
            b_ext: (out >> dc.b_ext) & 1,
            ancilla: (out >> dc.ancilla) & 1,
        }
    }

    struct DivOutcome {
        a: u64,
        b: u64,
        q: u64,
        r_low: u64,
        r_top: u64,
        b_ext: u64,
        ancilla: u64,
    }

    #[test]
    fn exhaustive_small_dividers() {
        for m in 1..=4usize {
            let max = 1u64 << m;
            for av in 0..max {
                for bv in 1..max {
                    let o = run_div(m, av, bv);
                    assert_eq!(o.a, av, "dividend restored (m={m}, a={av}, b={bv})");
                    assert_eq!(o.b, bv, "divisor restored");
                    assert_eq!(o.q, av / bv, "quotient (m={m}, a={av}, b={bv})");
                    assert_eq!(o.r_low, av % bv, "remainder (m={m}, a={av}, b={bv})");
                    assert_eq!(o.r_top, 0, "window top bit cleared");
                    assert_eq!(o.b_ext, 0, "zero-extension restored");
                    assert_eq!(o.ancilla, 0, "work qubit restored");
                }
            }
        }
    }

    #[test]
    fn division_by_zero_matches_model() {
        // Not a meaningful quotient, but circuit and model must agree so
        // the emulator can replicate the exact unitary.
        for m in 1..=4usize {
            let max = 1u64 << m;
            for av in 0..max {
                let o = run_div(m, av, 0);
                let (qm, rm) = divider_model(m, av, 0);
                assert_eq!(o.q, qm, "b=0 quotient (m={m}, a={av})");
                assert_eq!(o.r_low, rm, "b=0 remainder (m={m}, a={av})");
                assert_eq!(o.r_top, 0);
            }
        }
    }

    #[test]
    fn model_matches_integer_division() {
        for m in 1..=6usize {
            let max = 1u64 << m;
            for av in 0..max {
                for bv in 1..max {
                    assert_eq!(divider_model(m, av, bv), (av / bv, av % bv));
                }
            }
        }
    }

    #[test]
    fn wide_divider_random() {
        use rand::Rng;
        let mut rng = rand::thread_rng();
        let m = 12;
        let mask = (1u64 << m) - 1;
        for _ in 0..50 {
            let av = rng.gen::<u64>() & mask;
            let bv = (rng.gen::<u64>() & mask).max(1);
            let o = run_div(m, av, bv);
            assert_eq!(o.q, av / bv);
            assert_eq!(o.r_low, av % bv);
            assert_eq!((o.a, o.b, o.ancilla, o.b_ext, o.r_top), (av, bv, 0, 0, 0));
        }
    }

    #[test]
    fn divider_is_reversible() {
        let dc = divider(2);
        let inv = dc.circuit.inverse();
        // All 2^(4m+3) = 2^11 configurations must round-trip.
        for w in 0..(1u64 << dc.n_qubits) {
            let out = run_classical(&dc.circuit, w);
            assert_eq!(run_classical(&inv, out), w, "input {w:#b}");
        }
    }

    #[test]
    fn qubit_budget_is_4m_plus_3() {
        for m in [1usize, 3, 7] {
            assert_eq!(divider(m).n_qubits, 4 * m + 3);
        }
    }

    #[test]
    fn division_on_superposed_dividend() {
        use qcemu_sim::StateVector;
        let m = 2;
        let dc = divider(m);
        let mut sv = StateVector::zero_state(dc.n_qubits);
        // a in uniform superposition, b = 2.
        for qb in dc.a.bits() {
            sv.apply(&Gate::h(qb));
        }
        sv.apply(&Gate::x(dc.b.bit(1)));
        sv.apply_circuit(&dc.circuit);
        let all: Vec<usize> = (0..dc.n_qubits).collect();
        for (idx, p) in sv.register_distribution(&all).iter().enumerate() {
            if *p < 1e-15 {
                continue;
            }
            let w = idx as u64;
            assert_eq!(
                dc.q.get(w),
                dc.a.get(w) / 2,
                "quotient branch a={}",
                dc.a.get(w)
            );
            assert_eq!(
                dc.r.slice(0, m).get(w),
                dc.a.get(w) % 2,
                "remainder branch a={}",
                dc.a.get(w)
            );
        }
    }
}

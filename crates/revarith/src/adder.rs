//! Cuccaro ripple-carry adder (paper ref. \[12\]: quant-ph/0410184).
//!
//! Computes `(a, b) ↦ (a, a+b)` in place with a single ancilla qubit and
//! the MAJ/UMA ladder; `2m` Toffolis and `4m` CNOTs for `m`-bit operands.
//! Subtraction is the standard complement conjugation
//! `b − a = ¬(¬b + a)`, and every variant exists in a controlled form
//! (each gate gains the control) for use in the shift-and-add multiplier
//! and the restoring divider.

use crate::register::Register;
use qcemu_sim::{Circuit, Gate};

/// MAJ block: (x, y, z) carry-propagate step.
fn maj(c: &mut Circuit, x: usize, y: usize, z: usize, controls: &[usize]) {
    push_cx(c, z, y, controls);
    push_cx(c, z, x, controls);
    push_ccx(c, x, y, z, controls);
}

/// UMA block (2-CNOT version): undoes MAJ and writes the sum bit.
fn uma(c: &mut Circuit, x: usize, y: usize, z: usize, controls: &[usize]) {
    push_ccx(c, x, y, z, controls);
    push_cx(c, z, x, controls);
    push_cx(c, x, y, controls);
}

fn push_cx(c: &mut Circuit, ctrl: usize, tgt: usize, extra: &[usize]) {
    let mut controls = vec![ctrl];
    controls.extend_from_slice(extra);
    c.push(Gate::Unary {
        op: qcemu_sim::GateOp::X,
        target: tgt,
        controls,
    });
}

fn push_ccx(c: &mut Circuit, c1: usize, c2: usize, tgt: usize, extra: &[usize]) {
    let mut controls = vec![c1, c2];
    controls.extend_from_slice(extra);
    c.push(Gate::Unary {
        op: qcemu_sim::GateOp::X,
        target: tgt,
        controls,
    });
}

fn push_x(c: &mut Circuit, tgt: usize, extra: &[usize]) {
    c.push(Gate::Unary {
        op: qcemu_sim::GateOp::X,
        target: tgt,
        controls: extra.to_vec(),
    });
}

/// Emits `b ← a + b (mod 2^m)` onto `circuit`.
///
/// * `a`, `b` — equal-length operand registers (`a` is restored).
/// * `ancilla` — a work qubit that must be |0⟩ (restored to |0⟩).
/// * `carry_out` — optional qubit receiving the final carry.
/// * `controls` — extra controls applied to every gate (empty = plain add).
pub fn emit_add(
    circuit: &mut Circuit,
    a: Register,
    b: Register,
    ancilla: usize,
    carry_out: Option<usize>,
    controls: &[usize],
) {
    assert_eq!(a.len, b.len, "adder operands must have equal width");
    let m = a.len;
    assert!(m >= 1, "empty adder");

    // Carry chain: c0 = ancilla, then a_{i-1} carries forward.
    maj(circuit, ancilla, b.bit(0), a.bit(0), controls);
    for i in 1..m {
        maj(circuit, a.bit(i - 1), b.bit(i), a.bit(i), controls);
    }
    if let Some(z) = carry_out {
        push_cx(circuit, a.bit(m - 1), z, controls);
    }
    for i in (1..m).rev() {
        uma(circuit, a.bit(i - 1), b.bit(i), a.bit(i), controls);
    }
    uma(circuit, ancilla, b.bit(0), a.bit(0), controls);
}

/// Emits `b ← b − a (mod 2^m)` (complement conjugation of [`emit_add`]).
/// If `borrow_out` is given, it is flipped exactly when `a > b`.
pub fn emit_sub(
    circuit: &mut Circuit,
    a: Register,
    b: Register,
    ancilla: usize,
    borrow_out: Option<usize>,
    controls: &[usize],
) {
    for j in 0..b.len {
        push_x(circuit, b.bit(j), controls);
    }
    emit_add(circuit, a, b, ancilla, borrow_out, controls);
    for j in 0..b.len {
        push_x(circuit, b.bit(j), controls);
    }
}

/// A standalone adder circuit with its register layout.
pub struct AdderCircuit {
    /// The synthesised circuit.
    pub circuit: Circuit,
    /// First operand (restored).
    pub a: Register,
    /// Second operand (receives the sum).
    pub b: Register,
    /// Work qubit (index), |0⟩ in and out.
    pub ancilla: usize,
    /// Carry-out qubit (present when built with `with_carry`).
    pub carry_out: Option<usize>,
    /// Total qubits.
    pub n_qubits: usize,
}

/// Builds `(a, b) ↦ (a, a+b mod 2^m)` on `2m + 1` qubits
/// (or `2m + 2` with carry-out).
pub fn adder(m: usize, with_carry: bool) -> AdderCircuit {
    let mut l = crate::register::Layout::new();
    let a = l.alloc(m);
    let b = l.alloc(m);
    let ancilla = l.alloc_qubit();
    let carry_out = if with_carry {
        Some(l.alloc_qubit())
    } else {
        None
    };
    let mut circuit = Circuit::new(l.total());
    emit_add(&mut circuit, a, b, ancilla, carry_out, &[]);
    AdderCircuit {
        circuit,
        a,
        b,
        ancilla,
        carry_out,
        n_qubits: l.total(),
    }
}

/// Builds the subtractor `(a, b) ↦ (a, b − a mod 2^m)`.
pub fn subtractor(m: usize, with_borrow: bool) -> AdderCircuit {
    let mut l = crate::register::Layout::new();
    let a = l.alloc(m);
    let b = l.alloc(m);
    let ancilla = l.alloc_qubit();
    let borrow_out = if with_borrow {
        Some(l.alloc_qubit())
    } else {
        None
    };
    let mut circuit = Circuit::new(l.total());
    emit_sub(&mut circuit, a, b, ancilla, borrow_out, &[]);
    AdderCircuit {
        circuit,
        a,
        b,
        ancilla,
        carry_out: borrow_out,
        n_qubits: l.total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitsim::run_classical;

    fn run_adder(m: usize, with_carry: bool, av: u64, bv: u64) -> (u64, u64, u64, Option<u64>) {
        let ad = adder(m, with_carry);
        let mut word = 0u64;
        word = ad.a.set(word, av);
        word = ad.b.set(word, bv);
        let out = run_classical(&ad.circuit, word);
        let carry = ad.carry_out.map(|z| (out >> z) & 1);
        ((out >> ad.ancilla) & 1, ad.a.get(out), ad.b.get(out), carry)
    }

    #[test]
    fn exhaustive_small_adders() {
        for m in 1..=5usize {
            let max = 1u64 << m;
            for av in 0..max {
                for bv in 0..max {
                    let (anc, a_out, b_out, carry) = run_adder(m, true, av, bv);
                    assert_eq!(anc, 0, "ancilla must be restored");
                    assert_eq!(a_out, av, "a must be restored (m={m}, a={av}, b={bv})");
                    assert_eq!(b_out, (av + bv) % max, "sum wrong (m={m}, a={av}, b={bv})");
                    assert_eq!(
                        carry,
                        Some((av + bv) / max),
                        "carry wrong (m={m}, a={av}, b={bv})"
                    );
                }
            }
        }
    }

    #[test]
    fn wide_adder_random() {
        use rand::Rng;
        let mut rng = rand::thread_rng();
        let m = 24;
        let mask = (1u64 << m) - 1;
        for _ in 0..200 {
            let av = rng.gen::<u64>() & mask;
            let bv = rng.gen::<u64>() & mask;
            let (anc, a_out, b_out, _) = run_adder(m, false, av, bv);
            assert_eq!(anc, 0);
            assert_eq!(a_out, av);
            assert_eq!(b_out, (av + bv) & mask);
        }
    }

    #[test]
    fn exhaustive_small_subtractors() {
        for m in 1..=4usize {
            let max = 1u64 << m;
            let sb = subtractor(m, true);
            for av in 0..max {
                for bv in 0..max {
                    let mut word = 0u64;
                    word = sb.a.set(word, av);
                    word = sb.b.set(word, bv);
                    let out = run_classical(&sb.circuit, word);
                    assert_eq!(sb.a.get(out), av);
                    assert_eq!(
                        sb.b.get(out),
                        bv.wrapping_sub(av) & (max - 1),
                        "difference wrong (m={m}, a={av}, b={bv})"
                    );
                    let borrow = (out >> sb.carry_out.unwrap()) & 1;
                    assert_eq!(borrow, u64::from(av > bv), "borrow flag (a={av}, b={bv})");
                }
            }
        }
    }

    #[test]
    fn controlled_adder_respects_control() {
        let m = 3;
        let mut l = crate::register::Layout::new();
        let a = l.alloc(m);
        let b = l.alloc(m);
        let anc = l.alloc_qubit();
        let ctrl = l.alloc_qubit();
        let mut c = Circuit::new(l.total());
        emit_add(&mut c, a, b, anc, None, &[ctrl]);
        for av in 0..8u64 {
            for bv in 0..8u64 {
                // Control off: identity.
                let mut w = a.set(b.set(0, bv), av);
                assert_eq!(run_classical(&c, w), w, "control-off must be identity");
                // Control on: addition.
                w |= 1 << ctrl;
                let out = run_classical(&c, w);
                assert_eq!(b.get(out), (av + bv) % 8);
                assert_eq!(a.get(out), av);
                assert_eq!((out >> ctrl) & 1, 1);
            }
        }
    }

    #[test]
    fn adder_gate_count_scales_linearly() {
        let g8 = adder(8, false).circuit.gate_count();
        let g16 = adder(16, false).circuit.gate_count();
        // 6 gates per bit (MAJ + UMA), so doubling m roughly doubles count.
        assert_eq!(g8, 6 * 8);
        assert_eq!(g16, 6 * 16);
    }

    #[test]
    fn adder_works_on_superpositions() {
        // Quantum sanity: adding a constant register to a superposed target
        // permutes amplitudes coherently.
        use qcemu_sim::StateVector;
        let ad = adder(2, false);
        // a = 1, b in uniform superposition: prepare via H on b's qubits.
        let mut sv = StateVector::zero_state(ad.n_qubits);
        sv.apply(&Gate::x(ad.a.bit(0))); // a = 1
        sv.apply(&Gate::h(ad.b.bit(0)));
        sv.apply(&Gate::h(ad.b.bit(1)));
        sv.apply_circuit(&ad.circuit);
        // Each b value v should now sit at b = v+1 mod 4, uniformly.
        let dist = sv.register_distribution(&ad.b.bits());
        for v in 0..4 {
            assert!((dist[v] - 0.25).abs() < 1e-12);
        }
        // And a is still 1 with certainty.
        let da = sv.register_distribution(&ad.a.bits());
        assert!((da[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn rejects_mismatched_widths() {
        let mut c = Circuit::new(8);
        emit_add(
            &mut c,
            Register::new(0, 3),
            Register::new(3, 4),
            7,
            None,
            &[],
        );
    }
}

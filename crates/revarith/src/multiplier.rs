//! Repeated-addition-and-shift multiplier (paper §3.1).
//!
//! Maps `(a, b, c=0) ↦ (a, b, a·b mod 2^m)` exactly as the paper's Fig. 1
//! workload: for each bit `b_i`, a controlled Cuccaro addition of the
//! shifted operand `a·2^i` into the product register, truncated at `m`
//! bits. More generally the circuit computes `c ← c + a·b (mod 2^m)`,
//! which is a bijection for any initial `c` — the property the emulator's
//! in-place arithmetic map relies on.

use crate::adder::emit_add;
use crate::register::{Layout, Register};
use qcemu_sim::Circuit;

/// A synthesised multiplier with its register layout.
pub struct MultiplierCircuit {
    /// The circuit.
    pub circuit: Circuit,
    /// First factor (restored).
    pub a: Register,
    /// Second factor (restored).
    pub b: Register,
    /// Product register: receives `c + a·b mod 2^m`.
    pub c: Register,
    /// Cuccaro work qubit (|0⟩ in and out).
    pub ancilla: usize,
    /// Total qubits (`3m + 1`).
    pub n_qubits: usize,
}

/// Builds the `m`-bit multiplier `(a, b, c) ↦ (a, b, c + a·b mod 2^m)` on
/// `3m + 1` qubits (the paper's `n = 3m` plus the adder ancilla).
pub fn multiplier(m: usize) -> MultiplierCircuit {
    assert!(m >= 1, "multiplier needs at least 1 bit");
    let mut l = Layout::new();
    let a = l.alloc(m);
    let b = l.alloc(m);
    let c = l.alloc(m);
    let ancilla = l.alloc_qubit();
    let mut circuit = Circuit::new(l.total());

    // c[i..m] += a[0..m-i]  controlled on b_i  (shifted, truncated add).
    for i in 0..m {
        let a_slice = a.slice(0, m - i);
        let c_slice = c.slice(i, m - i);
        emit_add(&mut circuit, a_slice, c_slice, ancilla, None, &[b.bit(i)]);
    }

    MultiplierCircuit {
        circuit,
        a,
        b,
        c,
        ancilla,
        n_qubits: l.total(),
    }
}

/// Classical model of the circuit semantics (used by the emulator and the
/// tests): `c' = c + a·b mod 2^m`.
pub fn multiplier_model(m: usize, a: u64, b: u64, c: u64) -> u64 {
    let mask = if m >= 64 { u64::MAX } else { (1u64 << m) - 1 };
    (c.wrapping_add(a.wrapping_mul(b))) & mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitsim::run_classical;

    fn run_mult(m: usize, av: u64, bv: u64, cv: u64) -> (u64, u64, u64, u64) {
        let mc = multiplier(m);
        let mut w = 0u64;
        w = mc.a.set(w, av);
        w = mc.b.set(w, bv);
        w = mc.c.set(w, cv);
        let out = run_classical(&mc.circuit, w);
        (
            mc.a.get(out),
            mc.b.get(out),
            mc.c.get(out),
            (out >> mc.ancilla) & 1,
        )
    }

    #[test]
    fn exhaustive_small_multipliers() {
        for m in 1..=4usize {
            let max = 1u64 << m;
            for av in 0..max {
                for bv in 0..max {
                    let (ao, bo, co, anc) = run_mult(m, av, bv, 0);
                    assert_eq!(anc, 0, "ancilla restored");
                    assert_eq!(ao, av, "a restored");
                    assert_eq!(bo, bv, "b restored");
                    assert_eq!(co, (av * bv) % max, "product wrong (m={m}, a={av}, b={bv})");
                }
            }
        }
    }

    #[test]
    fn accumulates_into_nonzero_c() {
        // The add-convention semantics: c ← c + ab, a bijection in c.
        for av in 0..8u64 {
            for bv in 0..8u64 {
                for cv in 0..8u64 {
                    let (_, _, co, _) = run_mult(3, av, bv, cv);
                    assert_eq!(co, multiplier_model(3, av, bv, cv));
                }
            }
        }
    }

    #[test]
    fn wide_multiplier_random() {
        use rand::Rng;
        let mut rng = rand::thread_rng();
        let m = 16;
        let mask = (1u64 << m) - 1;
        for _ in 0..100 {
            let av = rng.gen::<u64>() & mask;
            let bv = rng.gen::<u64>() & mask;
            let (ao, bo, co, anc) = run_mult(m, av, bv, 0);
            assert_eq!((ao, bo, anc), (av, bv, 0));
            assert_eq!(co, av.wrapping_mul(bv) & mask);
        }
    }

    #[test]
    fn multiplier_is_reversible() {
        let mc = multiplier(3);
        let inv = mc.circuit.inverse();
        for w in 0..(1u64 << 9) {
            // Only test ancilla = 0 states (the valid input space).
            let out = run_classical(&mc.circuit, w);
            assert_eq!(run_classical(&inv, out), w);
        }
    }

    #[test]
    fn gate_count_is_quadratic_ish() {
        // Σ_{i} 6(m−i) = 6·m(m+1)/2 gates.
        let m = 6;
        let mc = multiplier(m);
        assert_eq!(mc.circuit.gate_count(), 6 * m * (m + 1) / 2);
        assert_eq!(mc.n_qubits, 3 * m + 1);
    }

    #[test]
    fn multiplication_on_superposition_of_inputs() {
        // The paper's workload: a, b in uniform superposition, product
        // register picks up a·b for every branch simultaneously.
        use qcemu_sim::StateVector;
        let m = 2;
        let mc = multiplier(m);
        let mut sv = StateVector::zero_state(mc.n_qubits);
        for q in mc.a.bits().into_iter().chain(mc.b.bits()) {
            sv.apply(&qcemu_sim::Gate::h(q));
        }
        sv.apply_circuit(&mc.circuit);
        // Check: P(c = a·b mod 4 | a, b) = 1 for each (a, b) branch.
        let all_bits: Vec<usize> = (0..mc.n_qubits).collect();
        let dist = sv.register_distribution(&all_bits);
        for (idx, p) in dist.iter().enumerate() {
            if *p < 1e-15 {
                continue;
            }
            let w = idx as u64;
            assert_eq!(
                mc.c.get(w),
                (mc.a.get(w) * mc.b.get(w)) % 4,
                "branch a={}, b={} has wrong product",
                mc.a.get(w),
                mc.b.get(w)
            );
            assert!((p - 1.0 / 16.0).abs() < 1e-12, "uniform branch weight");
        }
    }
}

//! Quantum phase estimation on the transverse-field Ising model — the
//! Table 2 workload at laptop scale, run through all three strategies
//! (gate-level, repeated squaring, eigendecomposition) with timings and
//! the crossover advisor's verdict.
//!
//! Run with: `cargo run --release --example qpe_ising [-- n b]`
//! Defaults: n = 4 spins, b = 6 bits of precision.

use qcemu::prelude::*;
use qcemu_core::QpeTimings;
use qcemu_linalg::eigenvalues;
use qcemu_sim::circuit_to_dense;
use qcemu_sim::circuits::{tfim_gate_count, tfim_trotter_step, TfimParams};
use std::time::Instant;

fn main() -> Result<(), EmuError> {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let b: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);

    let unitary = tfim_trotter_step(n, TfimParams::default());
    println!(
        "QPE of exp(-iHΔt) for the {n}-site TFIM: G = {} gates, b = {b} bits",
        tfim_gate_count(n)
    );

    // Program: target register holds the eigenvector guess (here |0…0⟩ —
    // a superposition of eigenstates), phase register reads the estimate.
    let build =
        |strategy: Option<QpeStrategy>| -> Result<(QuantumProgram, Box<dyn Executor>), EmuError> {
            let mut pb = ProgramBuilder::new();
            let target = pb.register("spins", n);
            let phase = pb.register("phase", b);
            pb.qpe(QpeOp {
                unitary: unitary.clone(),
                target,
                phase,
            });
            let program = pb.build()?;
            let exec: Box<dyn Executor> = match strategy {
                None => Box::new(GateLevelSimulator::new()),
                Some(s) => Box::new(Emulator::with_qpe_strategy(s)),
            };
            Ok((program, exec))
        };

    let mut reference: Option<StateVector> = None;
    for (label, strategy) in [
        ("gate-level simulation", None),
        (
            "repeated squaring     ",
            Some(QpeStrategy::RepeatedSquaring),
        ),
        (
            "eigendecomposition    ",
            Some(QpeStrategy::Eigendecomposition),
        ),
    ] {
        let (program, exec) = build(strategy)?;
        let init = StateVector::zero_state(program.n_qubits());
        let t0 = Instant::now();
        let out = exec.run(&program, init)?;
        let dt = t0.elapsed().as_secs_f64();
        let phase_bits: Vec<usize> = (n..n + b).collect();
        let dist = out.register_distribution(&phase_bits);
        let mode = dist
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap();
        println!(
            "{label}: {dt:>8.3}s   mode x = {:>3} (φ ≈ {:.4} turns, P = {:.3})",
            mode.0,
            mode.0 as f64 / (1u64 << b) as f64,
            mode.1
        );
        match &reference {
            None => reference = Some(out),
            Some(r) => {
                let diff = r.max_diff_up_to_phase(&out);
                assert!(diff < 1e-6, "strategies disagree: {diff}");
            }
        }
    }
    println!("all three strategies produced the same state ✓");

    // Direct spectral read-out: the emulator can skip QPE altogether and
    // hand you the eigenphases from the Schur decomposition.
    let u = circuit_to_dense(&unitary);
    let mut phases: Vec<f64> = eigenvalues(&u)
        .expect("eigensolver")
        .iter()
        .map(|l| {
            let mut p = l.arg() / std::f64::consts::TAU;
            if p < 0.0 {
                p += 1.0;
            }
            p
        })
        .collect();
    phases.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("\neigenphases of U (first 8, in turns):");
    for p in phases.iter().take(8) {
        println!("  {p:.6}");
    }

    // Crossover advisor on measured primitives (Table 2 logic).
    let t_apply = {
        let mut sv = StateVector::zero_state(n);
        let t0 = Instant::now();
        for _ in 0..32 {
            sv.apply_circuit(&unitary);
        }
        t0.elapsed().as_secs_f64() / 32.0
    };
    let (t_build, t_gemm, t_eig) = {
        let t0 = Instant::now();
        let u = circuit_to_dense(&unitary);
        let t_build = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = qcemu_linalg::gemm(&u, &u);
        let t_gemm = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = qcemu_linalg::eig(&u);
        (t_build, t_gemm, t0.elapsed().as_secs_f64())
    };
    let timings = QpeTimings {
        n,
        g: tfim_gate_count(n),
        t_apply_u: t_apply,
        t_build_dense: t_build,
        t_gemm,
        t_eig,
    };
    println!(
        "\ncrossover advisor: simulate up to b = {}, then emulate (measured on this host)",
        timings.crossover_repeated_squaring().unwrap_or(64) - 1
    );
    println!(
        "best strategy at b = {b}: {:?}",
        timings.best_strategy(b as u32)
    );

    // Close the loop: hand the measured timings to the emulator, so the
    // advisor's verdict — not the static b > 2n rule — picks the strategy
    // at execution time.
    let (program, _) = build(None)?;
    let advised = Emulator::new().with_timings(timings);
    let out = advised.run(&program, StateVector::zero_state(program.n_qubits()))?;
    let r = reference.as_ref().expect("reference state");
    println!(
        "emulator.with_timings(measured): same state as the reference ✓ (diff {:.1e})",
        r.max_diff_up_to_phase(&out)
    );

    // And the planner's view: the hybrid executor lowers the QPE to a
    // plan step with a cost-model-chosen strategy and reports predicted
    // vs measured cost per op.
    let hybrid = HybridExecutor::new();
    let (out, report) =
        hybrid.run_with_report(&program, StateVector::zero_state(program.n_qubits()))?;
    assert!(r.max_diff_up_to_phase(&out) < 1e-6);
    println!("\nhybrid executor plan report:\n{report}");
    Ok(())
}

//! Grover search with an emulated oracle: the phase oracle is a classical
//! predicate evaluated per basis state (§3.1 applied to diagonal
//! operators), and the amplified state is inspected exactly (§3.4).
//! The same program also runs gate-by-gate through the simulator to verify
//! the shortcut.
//!
//! Run with: `cargo run --release --example grover [-- n marked]`
//! Defaults: n = 10 qubits, marked = 0b1011001 (89).

use qcemu::prelude::*;
use qcemu_core::stdops::mark_value;
use std::f64::consts::PI;

/// Builds one Grover iteration (oracle + diffusion) into the program.
fn grover_iteration(pb: &mut ProgramBuilder, reg: RegisterId, marked: u64) {
    // Oracle: flip the sign of the marked item.
    pb.phase_oracle(mark_value(reg, marked, PI));
    // Diffusion: H⊗n · (2|0⟩⟨0| − I) · H⊗n (global phase ignored).
    pb.hadamard_all(reg);
    pb.phase_oracle(mark_value(reg, 0, PI));
    pb.hadamard_all(reg);
}

fn main() -> Result<(), EmuError> {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let marked: u64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(89 % (1 << n) as u64);

    let iterations = ((PI / 4.0) * ((1u64 << n) as f64).sqrt()).floor() as usize;
    println!("Grover search: {n} qubits, marked item {marked}, {iterations} iterations");

    let mut pb = ProgramBuilder::new();
    let reg = pb.register("x", n);
    pb.hadamard_all(reg);
    for _ in 0..iterations {
        grover_iteration(&mut pb, reg, marked);
    }
    let program = pb.build()?;

    // Emulate.
    let init = StateVector::zero_state(n);
    let emulated = Emulator::new().run(&program, init.clone())?;
    let p_marked = emulated.probability(marked as usize);
    println!(
        "emulator:  P(marked) = {p_marked:.4}  (uniform would be {:.5})",
        1.0 / (1u64 << n) as f64
    );
    assert!(p_marked > 0.9, "amplitude amplification failed");

    // The oracle carries a gate-level implementation (X-conjugated
    // multi-controlled phase), so the simulator can verify the whole run.
    if n <= 12 {
        let simulated = GateLevelSimulator::new().run(&program, init)?;
        let diff = emulated.max_diff_up_to_phase(&simulated);
        println!("simulator: max amplitude diff vs emulator = {diff:.2e}");
        assert!(diff < 1e-8);
    }

    // Exact success-probability curve over iterations (no sampling, §3.4).
    println!("\nP(marked) vs iteration (exact, from the amplitudes):");
    let mut pb = ProgramBuilder::new();
    let reg = pb.register("x", n);
    pb.hadamard_all(reg);
    let base = pb.build()?;
    let mut sv = Emulator::new().run(&base, StateVector::zero_state(n))?;
    for it in 0..=iterations {
        if it > 0 {
            let mut step = ProgramBuilder::new();
            let r2 = step.register("x", n);
            grover_iteration(&mut step, r2, marked);
            sv = Emulator::new().run(&step.build()?, sv)?;
        }
        if it % 4 == 0 || it == iterations {
            println!("  iter {it:3}: {:.4}", sv.probability(marked as usize));
        }
    }
    Ok(())
}

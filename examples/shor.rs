//! Shor's algorithm (period finding) via emulation — the paper's flagship
//! use case (§3.1): the modular exponentiation is evaluated classically per
//! basis state instead of being compiled into an enormous reversible
//! circuit, and the final measurement statistics are read exactly (§3.4).
//!
//! Run with: `cargo run --release --example shor [-- N a]`
//! Defaults: N = 15, a = 7.

use qcemu::prelude::*;
use qcemu_core::stdops::{gcd, modexp, pow_mod};

/// Continued-fraction convergents of x = num/den with denominators ≤ cap.
fn convergent_denominators(mut num: u64, mut den: u64, cap: u64) -> Vec<u64> {
    let mut hs = (1u64, 0u64); // h_{-1}, h_{-2}
    let mut ks = (0u64, 1u64); // k_{-1}, k_{-2}
    let mut out = Vec::new();
    while den != 0 {
        let q = num / den;
        let h = q.checked_mul(hs.0).and_then(|v| v.checked_add(hs.1));
        let k = q.checked_mul(ks.0).and_then(|v| v.checked_add(ks.1));
        let (Some(h), Some(k)) = (h, k) else { break };
        if k > cap {
            break;
        }
        out.push(k);
        hs = (h, hs.0);
        ks = (k, ks.0);
        let r = num % den;
        num = den;
        den = r;
    }
    out
}

fn main() -> Result<(), EmuError> {
    let args: Vec<String> = std::env::args().collect();
    let n_value: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(15);
    let a_value: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(7);
    assert!(gcd(a_value, n_value) == 1, "a must be coprime to N");

    let work_bits = (64 - n_value.leading_zeros()) as usize; // ⌈log2 N⌉
    let count_bits = 2 * work_bits; // standard 2n counting bits
    println!("Shor period finding: N = {n_value}, a = {a_value}");
    println!("registers: x ({count_bits} qubits), y ({work_bits} qubits)");

    // |x⟩|1⟩ → |x⟩|a^x mod N⟩ → inverse QFT on x.
    let mut pb = ProgramBuilder::new();
    let x = pb.register("x", count_bits);
    let y = pb.register("y", work_bits);
    pb.hadamard_all(x);
    pb.set_constant(y, 1);
    pb.classical(modexp(x, y, a_value, n_value)); // emulation-only op
    pb.inverse_qft(x);
    let program = pb.build()?;

    // The hybrid executor plans per op: the modular exponentiation has no
    // gate-level implementation, so the planner routes it to the §3.1
    // shortcut; the inverse QFT goes to whichever of FFT / fused gates
    // the cost model predicts is cheaper at this register width.
    let exec = HybridExecutor::new();
    let plan = exec.plan(&program);
    println!("\nexecution plan:\n{plan}\n");
    let (out, report) =
        exec.run_plan(&program, &plan, StateVector::zero_state(program.n_qubits()))?;
    println!("plan report (predicted vs measured):\n{report}\n");

    // §3.4: read the EXACT outcome distribution over x, no sampling.
    let x_bits: Vec<usize> = (0..count_bits).collect();
    let dist = out.register_distribution(&x_bits);
    let q = 1u64 << count_bits;

    // Show the distribution peaks.
    let mut peaks: Vec<(usize, f64)> = dist
        .iter()
        .enumerate()
        .filter(|(_, p)| **p > 1e-3)
        .map(|(i, p)| (i, *p))
        .collect();
    peaks.sort_by(|l, r| r.1.partial_cmp(&l.1).unwrap());
    println!("\ntop measurement outcomes (value / 2^{count_bits} ≈ k/r):");
    for (v, p) in peaks.iter().take(8) {
        println!("  x = {v:5}  P = {p:.4}  x/Q = {:.4}", *v as f64 / q as f64);
    }

    // Classical post-processing: continued fractions on each likely
    // outcome, keep the smallest r with a^r ≡ 1 (mod N).
    let mut period: Option<u64> = None;
    for (v, _) in peaks.iter().take(16) {
        for r in convergent_denominators(*v as u64, q, n_value) {
            if r > 0 && pow_mod(a_value, r, n_value) == 1 {
                period = Some(period.map_or(r, |p| p.min(r)));
            }
        }
    }
    let Some(r) = period else {
        println!("\nno period found in the top peaks (rerun with another a)");
        return Ok(());
    };
    println!(
        "\nrecovered period r = {r} (check: {a_value}^{r} mod {n_value} = {})",
        pow_mod(a_value, r, n_value)
    );

    // Factor N when the period is usable.
    if r % 2 == 0 && pow_mod(a_value, r / 2, n_value) != n_value - 1 {
        let half = pow_mod(a_value, r / 2, n_value);
        let f1 = gcd(half + 1, n_value);
        let f2 = gcd(half - 1, n_value);
        println!("factors: gcd(a^(r/2)±1, N) = {f1} × {f2}");
        assert_eq!(f1 * f2, n_value, "factor check");
    } else {
        println!("period is odd or trivial — pick a different a for factoring");
    }
    Ok(())
}

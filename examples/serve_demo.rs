//! The emulation daemon end-to-end: an in-process `qcemu-serve` server,
//! a parameter sweep submitted by concurrent clients, and the daemon's
//! counters showing what the serving layer did with it — one plan-cache
//! miss for the whole sweep, coalesced batch execution, and a typed
//! rejection for an over-width program.
//!
//! The same server can be started standalone with
//! `cargo run --release -p qcemu-serve --bin qcemu-served`; clients then
//! connect over TCP with [`EmuClient`]. See `docs/SERVING.md` for the
//! protocol and admission semantics.
//!
//! Run with: `cargo run --release --example serve_demo`

use qcemu::prelude::*;
use std::thread;
use std::time::Duration;

/// A phase-estimation-flavoured sweep body: Hadamard prep, a
/// parameter-carrying rotation onto an indicator qubit, and a QFT pair.
/// Every slope produces the *same structure*, so the daemon plans once.
fn sweep_program(slope: f64) -> WireProgram {
    WireProgram {
        registers: vec![
            WireRegister {
                name: "x".into(),
                len: 4,
            },
            WireRegister {
                name: "ind".into(),
                len: 1,
            },
        ],
        ops: vec![
            WireOp::Hadamard(0),
            WireOp::Rotation {
                x: 0,
                target: 1,
                slope,
                intercept: 0.1,
            },
            WireOp::Qft(0),
            WireOp::InverseQft(0),
        ],
    }
}

fn main() {
    // A small daemon: two workers, a 20 ms coalescing window, and an
    // admission policy that refuses anything wider than 10 qubits.
    let config = ServerConfig {
        workers: 2,
        batch_window: Duration::from_millis(20),
        policy: AdmissionPolicy {
            max_qubits: 10,
            ..AdmissionPolicy::default()
        },
        ..ServerConfig::default()
    };
    let handle = EmuServer::bind("127.0.0.1:0", config)
        .expect("bind")
        .start()
        .expect("start");
    let addr = handle.addr();
    println!("daemon listening on {addr}");

    let options = SubmitOptions {
        shots: 8,
        seed: 42,
        want_amplitudes: false,
    };

    // Eight tenants sweep the rotation slope concurrently. Structure is
    // identical across the sweep, so the daemon lowers the program once
    // and coalesces simultaneous arrivals into batch runs.
    thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                scope.spawn(move || {
                    let program = sweep_program(0.2 + 0.1 * i as f64);
                    let mut client = EmuClient::connect(addr).expect("connect");
                    let result = client.submit(&program, &options).expect("submit");
                    (i, result)
                })
            })
            .collect();
        for h in handles {
            let (i, r) = h.join().expect("client thread");
            println!(
                "request {i}: lane={:?} warm={} batched={} (batch of {}) shots={:?}",
                r.lane, r.warm, r.batched, r.batch_size, r.shots
            );
        }
    });

    // An over-width program bounces off admission with a typed error —
    // the daemon never spends a lowering on it.
    let mut client = EmuClient::connect(addr).expect("connect");
    let wide = WireProgram {
        registers: vec![WireRegister {
            name: "too-wide".into(),
            len: 20,
        }],
        ops: vec![WireOp::Hadamard(0)],
    };
    match client.submit(&wide, &options) {
        Err(ServeError::Server { code, message }) => {
            println!("20-qubit program rejected: {code}: {message}")
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }

    let stats = client.stats().expect("stats");
    println!(
        "daemon counters: requests={} served={} rejected_qubits={} \
         plan_misses={} plan_hits={} batches={} batched_requests={}",
        stats.requests,
        stats.served,
        stats.rejected_qubits,
        stats.plan_misses,
        stats.plan_hits,
        stats.batches,
        stats.batched_requests
    );
    assert_eq!(stats.plan_misses, 1, "one structure, one lowering");
    assert_eq!(stats.served, 8);
    assert_eq!(stats.rejected_qubits, 1);

    handle.shutdown();
    println!("daemon stopped cleanly");
}

//! Quantum(-style) Monte Carlo integration by amplitude encoding — the
//! application class the paper's summary singles out ("quantum accelerated
//! Monte Carlo sampling", §5, ref [22]).
//!
//! Pipeline: put `x` in uniform superposition, rotate an indicator qubit by
//! `θ(x) = 2·asin(√f(x))` so that `P(indicator = 1) = E[f(X)]`, then read
//! the expectation **exactly** from the amplitudes (§3.4) instead of
//! sampling shots. The controlled rotation is an emulated high-level op;
//! its gate-level compilation (one multi-controlled Ry per register value)
//! is also run at small size to verify equivalence.
//!
//! Run with: `cargo run --release --example monte_carlo [-- m]`
//! Default: m = 12 argument bits (4096 quadrature points).

use qcemu::prelude::*;
use qcemu_core::RotationOp;
use std::sync::Arc;
use std::time::Instant;

/// The integrand: f(x) = sin²(πx) on [0, 1); ∫ f = 1/2 exactly.
fn integrand(x: f64) -> f64 {
    (std::f64::consts::PI * x).sin().powi(2)
}

fn build_program(m: usize) -> Result<QuantumProgram, EmuError> {
    let mut pb = ProgramBuilder::new();
    let x = pb.register("x", m);
    let ind = pb.register("indicator", 1);
    pb.hadamard_all(x);
    pb.rotation(RotationOp {
        name: "amplitude-encode".into(),
        x,
        target: ind,
        angle: Arc::new(move |xv| {
            let t = xv as f64 / (1u64 << m) as f64;
            2.0 * integrand(t).sqrt().asin()
        }),
        gate_impl: None,
    });
    pb.build()
}

fn main() -> Result<(), EmuError> {
    let args: Vec<String> = std::env::args().collect();
    let m: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);

    println!("Monte Carlo integration of sin²(πx) over [0,1) with 2^{m} points");

    // Emulated run: superposition + controlled rotation + exact read-out.
    let program = build_program(m)?;
    let t0 = Instant::now();
    let out = Emulator::new().run(&program, StateVector::zero_state(program.n_qubits()))?;
    let p_one = measure::prob_qubit_one(&out, m); // indicator qubit
    let t_emu = t0.elapsed().as_secs_f64();
    println!("emulated estimate  E[f] = {p_one:.8}   ({t_emu:.3}s, exact read-out)");
    println!("analytic value     E[f] = 0.50000000 (midpoint-rule bias at 2^{m} pts is O(2^-2m))");
    assert!((p_one - 0.5).abs() < 1e-4);

    // Shot-based estimate (what hardware, or a shot-faithful simulator,
    // would need): σ ≈ 1/(2√shots).
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(7);
    for shots in [100usize, 10_000] {
        let t0 = Instant::now();
        let est = measure::expectation_z_sampled(&out, m, shots, &mut rng);
        let p_est = (1.0 - est) / 2.0; // ⟨Z⟩ = 1 − 2P(1)
        println!(
            "{shots:>7}-shot estimate = {p_est:.6}  (|err| = {:.2e}, {:.3}s)",
            (p_est - p_one).abs(),
            t0.elapsed().as_secs_f64()
        );
    }

    // Parameter sweep, batched: estimate E[s·f(X)] for a whole ensemble of
    // scales in ONE batched run. The members share one program structure,
    // so the batch executor plans once and advances all state vectors
    // together through batch-major kernels; each member keeps its own
    // rotation closure.
    let scales: Vec<f64> = (0..8).map(|j| 0.20 + 0.10 * j as f64).collect();
    let sweep: Vec<QuantumProgram> = scales
        .iter()
        .map(|&s| {
            let mut pb = ProgramBuilder::new();
            let x = pb.register("x", m);
            let ind = pb.register("indicator", 1);
            pb.hadamard_all(x);
            pb.rotation(RotationOp {
                name: "amplitude-encode".into(),
                x,
                target: ind,
                angle: Arc::new(move |xv| {
                    let t = xv as f64 / (1u64 << m) as f64;
                    2.0 * (s * integrand(t)).sqrt().asin()
                }),
                gate_impl: None,
            });
            pb.build().unwrap()
        })
        .collect();
    let exec = BatchExecutor::new();
    let t0 = Instant::now();
    let batch_out = exec.run(&sweep, BatchStateVector::zero_state(m + 1, sweep.len()))?;
    let t_batch = t0.elapsed().as_secs_f64();
    println!(
        "\nbatched sweep over {} scales ({t_batch:.3}s, planned once):",
        scales.len()
    );
    for (j, &s) in scales.iter().enumerate() {
        let est = measure::prob_qubit_one(&batch_out.member(j), m);
        println!(
            "  s = {s:.2}:  E[s·f] = {est:.8}  (analytic {:.8})",
            s / 2.0
        );
        assert!((est - s / 2.0).abs() < 1e-4);
    }
    assert_eq!(exec.plan_cache_misses(), 1, "one structure, one plan");

    // Gate-level verification at a small size: the generic compilation
    // expands to 2^m multi-controlled rotations.
    let small_m = 5;
    let program = build_program(small_m)?;
    let init = StateVector::zero_state(program.n_qubits());
    let emu = Emulator::new().run(&program, init.clone())?;
    let t0 = Instant::now();
    let sim = GateLevelSimulator::new().run(&program, init)?;
    let t_sim = t0.elapsed().as_secs_f64();
    let diff = emu.max_diff_up_to_phase(&sim);
    println!(
        "\nverification at m = {small_m}: gate-level (2^{small_m} multi-controlled Ry, {t_sim:.3}s) \
         vs emulated, diff = {diff:.2e}"
    );
    assert!(diff < 1e-9);
    println!("monte_carlo OK");
    Ok(())
}

//! Quantum arithmetic on superpositions: the paper's §3.1 in miniature.
//! Multiplies and divides m-bit registers held in superposition, timing the
//! emulated shortcut against the full reversible-circuit simulation on this
//! machine.
//!
//! Run with: `cargo run --release --example arithmetic [-- m]`
//! Default: m = 4 bits per number.

use qcemu::prelude::*;
use std::time::Instant;

fn main() -> Result<(), EmuError> {
    let args: Vec<String> = std::env::args().collect();
    let m: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);

    // ----- multiplication ------------------------------------------------
    let mut pb = ProgramBuilder::new();
    let a = pb.register("a", m);
    let b = pb.register("b", m);
    let c = pb.register("c", m);
    pb.hadamard_all(a);
    pb.hadamard_all(b);
    pb.classical(stdops::multiply(a, b, c, m));
    let program = pb.build()?;
    let init = StateVector::zero_state(program.n_qubits());

    println!(
        "multiplication of two superposed {m}-bit numbers ({} qubits + 1 ancilla):",
        3 * m
    );
    let t0 = Instant::now();
    let emulated = Emulator::new().run(&program, init.clone())?;
    let t_emu = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let simulated = GateLevelSimulator::elementary().run(&program, init)?;
    let t_sim = t0.elapsed().as_secs_f64();
    assert!(emulated.max_diff_up_to_phase(&simulated) < 1e-9);
    println!(
        "  emulated {t_emu:.4}s   simulated {t_sim:.4}s   speedup {:.1}x",
        t_sim / t_emu
    );

    // Verify one branch explicitly: P(c = a·b mod 2^m) = 1 in every branch.
    let regs = program.registers();
    let mut checked = 0;
    for (idx, p) in emulated
        .register_distribution(&(0..program.n_qubits()).collect::<Vec<_>>())
        .iter()
        .enumerate()
    {
        if *p < 1e-15 {
            continue;
        }
        let av = regs[0].value_of(idx);
        let bv = regs[1].value_of(idx);
        let cv = regs[2].value_of(idx);
        assert_eq!(cv, (av * bv) % (1 << m), "branch a={av} b={bv}");
        checked += 1;
    }
    println!("  verified c = a*b on all {checked} surviving branches");

    // ----- division -------------------------------------------------------
    let mut pb = ProgramBuilder::new();
    let a = pb.register("a", m);
    let b = pb.register("b", m);
    let q = pb.register("q", m);
    let r = pb.register("r", m);
    pb.hadamard_all(a);
    pb.set_constant(b, 3);
    pb.classical(stdops::divide(a, b, q, r, m));
    let program = pb.build()?;
    let init = StateVector::zero_state(program.n_qubits());

    println!(
        "\ndivision of a superposed {m}-bit number by 3 ({} qubits + 3 ancillas):",
        4 * m
    );
    let t0 = Instant::now();
    let emulated = Emulator::new().run(&program, init.clone())?;
    let t_emu = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let simulated = GateLevelSimulator::elementary().run(&program, init)?;
    let t_sim = t0.elapsed().as_secs_f64();
    assert!(emulated.max_diff_up_to_phase(&simulated) < 1e-9);
    println!(
        "  emulated {t_emu:.4}s   simulated {t_sim:.4}s   speedup {:.1}x",
        t_sim / t_emu
    );

    let regs = program.registers();
    for (idx, p) in emulated
        .register_distribution(&(0..program.n_qubits()).collect::<Vec<_>>())
        .iter()
        .enumerate()
    {
        if *p < 1e-15 {
            continue;
        }
        let av = regs[0].value_of(idx);
        assert_eq!(regs[2].value_of(idx), av / 3);
        assert_eq!(regs[3].value_of(idx), av % 3);
    }
    println!("  verified q = a/3, r = a%3 on every branch");

    println!("\nnote: the gap widens rapidly with m — run the Fig. 1/Fig. 2 harnesses");
    println!("      (cargo run -p qcemu-bench --release --bin fig1_multiplication)");
    Ok(())
}

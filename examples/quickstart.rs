//! Quickstart: build a small high-level program, run it through both the
//! emulator and the gate-level simulator, and confirm they agree.
//!
//! Run with: `cargo run --release --example quickstart`

use qcemu::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), EmuError> {
    // --- 1. Plain circuit simulation: a Bell pair -----------------------
    let mut bell = StateVector::zero_state(2);
    bell.apply(&Gate::h(0));
    bell.apply(&Gate::cnot(0, 1));
    println!("Bell state probabilities:");
    for i in 0..4 {
        println!("  |{i:02b}⟩ : {:.3}", bell.probability(i));
    }

    // --- 2. A high-level program: superposed multiplication + QFT -------
    let m = 3;
    let mut pb = ProgramBuilder::new();
    let a = pb.register("a", m);
    let b = pb.register("b", m);
    let c = pb.register("c", m);
    pb.hadamard_all(a); // a in uniform superposition
    pb.set_constant(b, 5); // b = 5
    pb.classical(stdops::multiply(a, b, c, m)); // c = a*5 mod 8, all branches at once
    pb.qft(c); // then a QFT on the product register
    let program = pb.build()?;

    let init = StateVector::zero_state(program.n_qubits());

    // The emulator executes the multiply as a basis-state relabelling and
    // the QFT as an FFT; the simulator grinds through the Cuccaro network
    // and the H/controlled-phase circuit. Same state either way.
    let emulated = Emulator::new().run(&program, init.clone())?;
    let simulated = GateLevelSimulator::new().run(&program, init.clone())?;
    let diff = emulated.max_diff_up_to_phase(&simulated);
    println!("\nmultiply+QFT: emulator vs simulator max amplitude diff = {diff:.2e}");
    assert!(diff < 1e-9);

    // The simulator can also fuse gate runs into cache-blocked multi-qubit
    // sweeps (docs/PERFORMANCE.md) — same state again, fewer memory passes.
    let fused = GateLevelSimulator::fused().run(&program, init)?;
    let diff = emulated.max_diff_up_to_phase(&fused);
    println!("multiply+QFT: emulator vs fused simulator max amplitude diff = {diff:.2e}");
    assert!(diff < 1e-9);

    // --- 3. Measurement: exact statistics vs shots (paper §3.4) ---------
    let mut rng = StdRng::seed_from_u64(1);
    let exact = measure::expectation_z(&emulated, 0);
    let sampled = measure::expectation_z_sampled(&emulated, 0, 10_000, &mut rng);
    println!("⟨Z_0⟩ exact (one pass) = {exact:+.4}, 10k-shot estimate = {sampled:+.4}");

    // Sample a few measurement outcomes like a real device would produce.
    let shots = measure::sample_shots(&emulated, 5, &mut rng);
    println!("five measurement samples (basis indices): {shots:?}");

    println!("\nquickstart OK");
    Ok(())
}
